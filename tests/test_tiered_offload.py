"""Tiered KV-cache offload in the migration planner, pinned four ways.

The host/object-storage spill tier rests on four claims, each pinned here:

* **Differential**: with an infinite-bandwidth, zero-latency tier the
  derived tiered plans carry the byte-identical transfer skeleton (steps,
  ``Transfer`` content and ordering, layer order, byte totals) of the
  ``fast_path`` GPU-to-GPU reference plans over seeded fleet-churn round
  chains -- the tier changes *transport*, never *what moves where*; and a
  uselessly slow tier (1 B/s) reproduces the tier-less run's legacy
  ``summary_text()`` byte-for-byte.
* **Properties**: spill is chosen iff the direct plan misses the merged
  grace deadline under the active bandwidth factor; a chosen plan's
  source-side ``window_time`` never exceeds the deadline when any feasible
  tier split exists; derivation is deterministic and monotone in the
  window.
* **Conservation**: ``bytes_spilled == bytes_restored + bytes_abandoned +
  pending_spill_bytes()`` at every reconfiguration / completion /
  preemption-final probe under randomized fault mixes, collapsing to the
  exact three-term equation once drained; the new counters appear in
  ``extended_summary_text()`` only, and both legacy golden digests stay
  byte-identical with a *counting* tier model installed (non-vacuously:
  the same model's counters move the moment a deadline miss exercises it).
* **Tooling**: the ``tiered_offload`` scenario is wired through
  ``run_perf.py --check`` (baseline entry + fail/pass/skip guard
  behavior), the CI perf-smoke matrix and the policy benchmark, and the
  ``_drain_deferred_fast`` all-deferred dead-column guard holds with a
  tier configured.
"""

import dataclasses
import hashlib
import importlib.util
import json
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cloud.trace import TraceEvent, TraceEventKind
from repro.core.config import ParallelConfig
from repro.core.device_mapper import DeviceMapper
from repro.core.migration import MigrationPlanner, MigrationStep
from repro.core.server import SpotServeOptions, SpotServeSystem
from repro.core.stats import ServingStats
from repro.engine.context import MetaContextManager
from repro.engine.placement import mesh_positions
from repro.experiments.policy_bench import BENCH_SCENARIOS, build_cell, result_row
from repro.experiments.runner import run_scenario_experiment, run_serving_experiment
from repro.experiments.scenarios import (
    TIERED_OFFLOAD_SEED,
    TIERED_OFFLOAD_TIER,
    multi_zone_fluctuating_scenario,
    stable_workload_scenario,
    tiered_offload_fault_plan,
    tiered_offload_market,
    tiered_offload_scenario,
)
from repro.faults.injector import FaultPlan, ZoneFaultModel
from repro.llm.spec import GPT_20B, OPT_6_7B
from repro.sim.network import NetworkModel, OffloadTierSpec, Transfer

REPO_ROOT = Path(__file__).resolve().parents[1]

GB = 1024 ** 3

#: Unit-test tier: fast enough that spilling beats the direct GPU-to-GPU
#: path on the small planner harness below (where direct bandwidth is not
#: degraded), with a tiny but non-zero latency so restore_time stays
#: observable.  The *scenario* tests use the realistic TIERED_OFFLOAD_TIER.
FAST_TIER = OffloadTierSpec(
    spill_bandwidth=1e6 * GB, restore_bandwidth=2e6 * GB, per_spill_latency=1e-3
)

#: The two legacy golden digests (recorded on PR 2); the tiered-offload
#: hooks must keep both byte-identical whenever no tier is configured, and
#: -- pinned below with a counting tier model -- even when a tier *is*
#: configured but never consulted.
SINGLE_ZONE_SHA256 = "13bd9e142347b849dcba2c5f52829a5ca9c7638ccb40c83512c45d80ce4d64b5"
MULTI_ZONE_SHA256 = "33c8a35b9b2764488dda4379defb50adea6283cafdcfed7618b22167ecc8502c"

#: The five counters the tier adds; extended-summary-only by contract.
SPILL_COUNTERS = (
    "bytes_spilled",
    "bytes_restored",
    "bytes_abandoned",
    "restores",
    "spill_fallbacks",
)


def devices_for(num_instances, gpus_per_instance=4, prefix="inst"):
    return [
        (f"{prefix}-{i:02d}", g)
        for i in range(num_instances)
        for g in range(gpus_per_instance)
    ]


def installed_transition(model=GPT_20B, num_instances=6):
    """A deterministic stateful fleet transition with a non-trivial plan."""
    meta = MetaContextManager(model)
    devices = devices_for(num_instances)
    old = ParallelConfig(1, 2, 8, 8)
    positions = mesh_positions(old.data_degree, old.pipeline_degree, old.tensor_degree)
    for device, position in zip(devices, positions):
        meta.daemon(device).install_model_context(
            old.pipeline_degree, old.tensor_degree, position
        )
    new = ParallelConfig(1, 3, 4, 8)
    mapping = DeviceMapper(model).map_devices(meta, devices, new)
    return meta, devices, mapping


def random_fleet_state(rng, model):
    """Random meta-context state, mirroring the planner fast-path harness."""
    meta = MetaContextManager(model)
    n_instances = int(rng.integers(2, 9))
    devices = devices_for(n_instances)
    old = ParallelConfig(
        int(rng.choice([1, 2])),
        int(rng.choice([1, 2, 3])),
        int(rng.choice([2, 4, 8])),
        8,
    )
    positions = mesh_positions(old.data_degree, old.pipeline_degree, old.tensor_degree)
    for device, position in zip(devices, positions):
        if rng.random() < 0.8:
            meta.daemon(device).install_model_context(
                old.pipeline_degree, old.tensor_degree, position
            )
        if rng.random() < 0.4:
            meta.daemon(device).install_cache_context(
                old.pipeline_degree,
                old.tensor_degree,
                position,
                batch_size=int(rng.integers(1, 9)),
                cached_tokens=int(rng.integers(1, 700)),
            )
    return meta, devices, old


def random_transition(rng, meta, devices, old):
    """Random fleet delta then a feasible new config (fast-path harness)."""
    delta = rng.integers(0, 4)
    if delta == 0 and len({d[0] for d in devices}) > 2:
        instances = sorted({d[0] for d in devices})
        victim = instances[int(rng.integers(0, len(instances)))]
        meta.drop_instance(victim)
        devices = [d for d in devices if d[0] != victim]
    elif delta == 1:
        index = len({d[0] for d in devices}) + int(rng.integers(10, 90))
        devices = devices + devices_for(1, prefix=f"inst-{index:02d}")
    while True:
        new = ParallelConfig(
            int(rng.choice([1, 2])),
            int(rng.choice([1, 2, 3])),
            int(rng.choice([2, 4])),
            8,
        )
        if new.num_gpus <= len(devices):
            return devices, new


def transfer_skeleton(transfer):
    """Everything about a Transfer except its transport tier."""
    return (transfer.src, transfer.dst, transfer.size_bytes, transfer.tag)


def assert_skeletons_byte_equal(tiered, reference):
    """The tiered plan moves byte-identical pieces in identical order."""
    assert tiered.layer_order == reference.layer_order
    assert tiered.peak_buffer_bytes == reference.peak_buffer_bytes
    assert tiered.storage_load_time == reference.storage_load_time
    assert tiered.total_bytes == reference.total_bytes
    assert tiered.remote_bytes == reference.remote_bytes
    assert len(tiered.steps) == len(reference.steps)
    for tiered_step, ref_step in zip(tiered.steps, reference.steps):
        assert tiered_step.kind == ref_step.kind
        assert tiered_step.layer_index == ref_step.layer_index
        assert tiered_step.storage_bytes == ref_step.storage_bytes
        assert tiered_step.stages_ready == ref_step.stages_ready
        assert [transfer_skeleton(t) for t in tiered_step.transfers] == [
            transfer_skeleton(t) for t in ref_step.transfers
        ]


def digest(result) -> str:
    return hashlib.sha256(result.stats.summary_text().encode()).hexdigest()


def run_tiered(scenario, arrivals, system_cls=SpotServeSystem):
    """The acceptance harness: pinned fleet, byte-equal cost across variants."""
    return run_scenario_experiment(
        scenario,
        arrivals,
        drain_time=300.0,
        system_cls=system_cls,
        allow_spot_requests=False,
    )


@pytest.fixture(scope="module")
def tiered_run():
    scenario, arrivals = tiered_offload_scenario()
    return run_tiered(scenario, arrivals)


@pytest.fixture(scope="module")
def tierless_run():
    scenario, arrivals = tiered_offload_scenario()
    return run_tiered(dataclasses.replace(scenario, offload_tier=None), arrivals)


@pytest.fixture(scope="module")
def useless_tier_run():
    """Same market with a tier so slow no split ever fits the window."""
    scenario, arrivals = tiered_offload_scenario()
    crawling = OffloadTierSpec(
        spill_bandwidth=1.0, restore_bandwidth=1.0, per_spill_latency=0.05
    )
    return run_tiered(dataclasses.replace(scenario, offload_tier=crawling), arrivals)


class TestOffloadTierSpec:
    def test_defaults_are_valid_and_frozen(self):
        spec = OffloadTierSpec()
        assert spec.spill_bandwidth > 0 and spec.restore_bandwidth > 0
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.spill_bandwidth = 1.0

    def test_spec_is_hashable(self):
        assert hash(OffloadTierSpec()) == hash(OffloadTierSpec())

    @pytest.mark.parametrize("field", ["spill_bandwidth", "restore_bandwidth"])
    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_non_positive_bandwidth_rejected(self, field, value):
        with pytest.raises(ValueError):
            OffloadTierSpec(**{field: value})

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            OffloadTierSpec(per_spill_latency=-0.01)

    def test_non_positive_zone_override_rejected(self):
        with pytest.raises(ValueError):
            OffloadTierSpec(zone_bandwidth=(("us-east-1a", 0.0),))

    def test_zone_override_applies_to_spill(self):
        spec = OffloadTierSpec(
            spill_bandwidth=2.0 * GB, zone_bandwidth=(("slow", 0.5 * GB),)
        )
        assert spec.spill_bandwidth_for("slow") == 0.5 * GB
        assert spec.spill_bandwidth_for("fast") == 2.0 * GB
        assert spec.spill_bandwidth_for(None) == 2.0 * GB

    def test_zone_override_scales_restore_proportionally(self):
        spec = OffloadTierSpec(
            spill_bandwidth=2.0 * GB,
            restore_bandwidth=4.0 * GB,
            zone_bandwidth=(("slow", 0.5 * GB),),
        )
        # Restore keeps the global 2x read/write ratio under the override.
        assert spec.restore_bandwidth_for("slow") == pytest.approx(1.0 * GB)
        assert spec.restore_bandwidth_for(None) == 4.0 * GB


class TestTransferTier:
    def test_default_tier_is_direct(self):
        transfer = Transfer(src=("a", 0), dst=("b", 0), size_bytes=1.0)
        assert transfer.tier == "direct"

    def test_tier_participates_in_equality(self):
        direct = Transfer(src=("a", 0), dst=("b", 0), size_bytes=1.0)
        offload = Transfer(src=("a", 0), dst=("b", 0), size_bytes=1.0, tier="offload")
        assert direct != offload
        assert offload == dataclasses.replace(direct, tier="offload")


class TestSpillRestoreTimes:
    @staticmethod
    def network(tier=None, zone_of=None):
        net = NetworkModel(zone_of=zone_of)
        net.offload_tier = tier
        return net

    @staticmethod
    def transfer(src, dst, size, tier="offload"):
        return Transfer(src=(src, 0), dst=(dst, 0), size_bytes=size, tier=tier)

    def test_no_tier_means_zero(self):
        net = self.network()
        transfers = [self.transfer("a", "b", 4.0 * GB)]
        assert net.spill_time(transfers) == 0.0
        assert net.restore_time(transfers) == 0.0

    def test_nothing_to_move_means_zero(self):
        net = self.network(OffloadTierSpec())
        noop = Transfer(src=("a", 0), dst=("a", 0), size_bytes=4.0 * GB)
        assert net.spill_time([]) == 0.0
        assert net.spill_time([noop]) == 0.0
        assert net.restore_time([self.transfer("a", "b", 0.0)]) == 0.0

    def test_single_stream_arithmetic(self):
        tier = OffloadTierSpec(
            spill_bandwidth=2.0 * GB, restore_bandwidth=4.0 * GB, per_spill_latency=0.5
        )
        net = self.network(tier)
        transfers = [self.transfer("a", "b", 8.0 * GB)]
        assert net.spill_time(transfers) == pytest.approx(0.5 + 4.0)
        assert net.restore_time(transfers) == pytest.approx(0.5 + 2.0)

    def test_spill_groups_by_source_instance(self):
        tier = OffloadTierSpec(spill_bandwidth=1.0 * GB, per_spill_latency=0.0)
        net = self.network(tier)
        transfers = [
            self.transfer("a", "x", 2.0 * GB),
            self.transfer("a", "y", 3.0 * GB),
            self.transfer("b", "x", 4.0 * GB),
        ]
        # Instance a uploads 5 GB, instance b 4 GB, in parallel: 5 s wins.
        assert net.spill_time(transfers) == pytest.approx(5.0)

    def test_restore_groups_by_destination_instance(self):
        tier = OffloadTierSpec(
            spill_bandwidth=1.0 * GB, restore_bandwidth=1.0 * GB, per_spill_latency=0.0
        )
        net = self.network(tier)
        transfers = [
            self.transfer("a", "x", 2.0 * GB),
            self.transfer("b", "x", 3.0 * GB),
            self.transfer("b", "y", 4.0 * GB),
        ]
        # Destination x downloads 5 GB, y 4 GB, in parallel: 5 s wins.
        assert net.restore_time(transfers) == pytest.approx(5.0)

    def test_zone_override_prices_the_degraded_zone(self):
        tier = OffloadTierSpec(
            spill_bandwidth=4.0 * GB,
            per_spill_latency=0.0,
            zone_bandwidth=(("cold", 1.0 * GB),),
        )
        net = self.network(tier, zone_of=lambda inst: "cold" if inst == "a" else "hot")
        assert net.spill_time([self.transfer("a", "x", 4.0 * GB)]) == pytest.approx(4.0)
        assert net.spill_time([self.transfer("b", "x", 4.0 * GB)]) == pytest.approx(1.0)

    def test_degraded_window_divides_both_directions(self):
        tier = OffloadTierSpec(
            spill_bandwidth=2.0 * GB, restore_bandwidth=4.0 * GB, per_spill_latency=0.0
        )
        net = self.network(tier)
        transfers = [self.transfer("a", "b", 8.0 * GB)]
        clean_spill = net.spill_time(transfers)
        clean_restore = net.restore_time(transfers)
        net.degradation = lambda: 4.0
        assert net.spill_time(transfers) == pytest.approx(4.0 * clean_spill)
        assert net.restore_time(transfers) == pytest.approx(4.0 * clean_restore)

    def test_non_positive_degradation_factor_is_ignored(self):
        tier = OffloadTierSpec(spill_bandwidth=2.0 * GB, per_spill_latency=0.0)
        net = self.network(tier)
        transfers = [self.transfer("a", "b", 8.0 * GB)]
        clean = net.spill_time(transfers)
        net.degradation = lambda: 0.0
        assert net.spill_time(transfers) == pytest.approx(clean)


class TestDeriveTieredPlan:
    @staticmethod
    def planner_and_plan(tier=FAST_TIER):
        meta, devices, mapping = installed_transition()
        network = NetworkModel()
        network.offload_tier = tier
        planner = MigrationPlanner(GPT_20B, network)
        plan = planner.plan(meta, mapping, {})
        assert plan.migration_time > 0 and len(plan.steps) > 1
        return planner, plan

    def test_no_tier_returns_none(self):
        planner, plan = self.planner_and_plan(tier=None)
        assert planner.derive_tiered_plan(plan, plan.migration_time / 2) is None

    def test_plan_already_fitting_returns_none(self):
        planner, plan = self.planner_and_plan()
        assert planner.derive_tiered_plan(plan, plan.migration_time) is None
        assert planner.derive_tiered_plan(plan, plan.migration_time * 2) is None

    def test_already_tiered_plan_returns_none(self):
        planner, plan = self.planner_and_plan()
        tiered = planner.derive_tiered_plan(plan, plan.migration_time / 2)
        assert tiered is not None
        assert planner.derive_tiered_plan(tiered, tiered.window_time / 2) is None

    def test_infeasible_window_returns_none(self):
        # Even the all-spill split pays the per-stream latency, so a window
        # below it is infeasible and the caller falls back to rerouting.
        planner, plan = self.planner_and_plan(
            tier=OffloadTierSpec(per_spill_latency=1.0)
        )
        assert planner.derive_tiered_plan(plan, 0.5) is None

    def test_derived_plan_beats_the_window(self):
        planner, plan = self.planner_and_plan()
        window = plan.migration_time / 2
        tiered = planner.derive_tiered_plan(plan, window)
        assert tiered is not None
        assert tiered.tier == "offload"
        assert tiered.window_time <= window
        assert plan.migration_time > window  # direct genuinely missed

    def test_spilled_equals_restored_equals_suffix_bytes(self):
        planner, plan = self.planner_and_plan()
        tiered = planner.derive_tiered_plan(plan, plan.migration_time / 2)
        offload_bytes = sum(
            t.size_bytes
            for step in tiered.steps
            for t in step.transfers
            if t.tier == "offload" and not t.is_noop
        )
        assert tiered.spilled_bytes == pytest.approx(offload_bytes)
        assert tiered.restored_bytes == pytest.approx(tiered.spilled_bytes)
        assert tiered.spilled_bytes > 0

    def test_stall_time_sums_the_three_phases(self):
        planner, plan = self.planner_and_plan()
        tiered = planner.derive_tiered_plan(plan, plan.migration_time / 2)
        assert tiered.stall_time == pytest.approx(
            tiered.direct_window_time + tiered.spill_time + tiered.restore_time
        )
        assert tiered.window_time == pytest.approx(
            tiered.direct_window_time + tiered.spill_time
        )

    def test_input_plan_is_never_mutated(self):
        planner, plan = self.planner_and_plan()
        before = [
            (step.kind, step.layer_index, tuple(step.transfers))
            for step in plan.steps
        ]
        tier_before = plan.tier
        planner.derive_tiered_plan(plan, plan.migration_time / 2)
        assert plan.tier == tier_before == "direct"
        assert [
            (step.kind, step.layer_index, tuple(step.transfers))
            for step in plan.steps
        ] == before
        assert all(
            t.tier == "direct" for step in plan.steps for t in step.transfers
        )

    def test_memoised_plan_survives_derivation(self):
        """The planner memo hands out shared plan objects; derivation from a
        memo hit must leave the cached plan reusable."""
        meta, devices, mapping = installed_transition()
        network = NetworkModel()
        network.offload_tier = FAST_TIER
        planner = MigrationPlanner(GPT_20B, network)
        first = planner.plan(meta, mapping, {})
        assert planner.derive_tiered_plan(first, first.migration_time / 2) is not None
        second = planner.plan(meta, mapping, {})
        assert second is first  # memo hit, still byte-intact
        assert second.tier == "direct"

    def test_derivation_is_not_memoised(self):
        planner, plan = self.planner_and_plan()
        one = planner.derive_tiered_plan(plan, plan.migration_time / 2)
        two = planner.derive_tiered_plan(plan, plan.migration_time / 2)
        assert one is not two

    def test_direct_prefix_grows_with_the_window(self):
        planner, plan = self.planner_and_plan()
        windows = [plan.migration_time * f for f in (0.2, 0.5, 0.8, 0.95)]
        kept = []
        for window in windows:
            tiered = planner.derive_tiered_plan(plan, window)
            if tiered is not None:
                kept.append((window, tiered.direct_window_time))
        assert len(kept) >= 2
        for (w1, d1), (w2, d2) in zip(kept, kept[1:]):
            assert w1 <= w2 and d1 <= d2


class TestWindowTimeSemantics:
    def test_direct_plan_window_time_is_migration_time(self):
        meta, devices, mapping = installed_transition()
        plan = MigrationPlanner(GPT_20B, NetworkModel()).plan(meta, mapping, {})
        assert plan.tier == "direct"
        assert plan.window_time == plan.migration_time

    def test_tiered_plan_excludes_restore_from_the_window(self):
        planner, plan = TestDeriveTieredPlan.planner_and_plan()
        tiered = planner.derive_tiered_plan(plan, plan.migration_time / 2)
        assert tiered.restore_time > 0
        # Restore runs on the survivors after the deadline; only the
        # source-side work (direct prefix + spill) must beat it.
        assert tiered.window_time == pytest.approx(
            tiered.migration_time - tiered.restore_time
        )


class TestDifferentialInfiniteBandwidth:
    """An infinite tier degenerates to the GPU-to-GPU reference skeleton."""

    INSTANT = OffloadTierSpec(
        spill_bandwidth=1e30, restore_bandwidth=1e30, per_spill_latency=0.0
    )

    # Seed 3 draws a storage-bound chain (no transfer time, nothing to
    # spill) and is replaced by 8 to keep every chain non-vacuous.
    @pytest.mark.parametrize("seed", [0, 1, 2, 4, 5, 6, 7, 8])
    def test_fleet_churn_chains_keep_reference_skeleton(self, seed):
        rng = np.random.default_rng(seed)
        model = GPT_20B if seed % 2 else OPT_6_7B
        meta, devices, old = random_fleet_state(rng, model)
        network = NetworkModel()
        network.offload_tier = self.INSTANT
        planner = MigrationPlanner(model, network)
        reference = MigrationPlanner(model, network, fast_path=False)
        mapper = DeviceMapper(model)

        derived = 0
        for round_index in range(4):
            devices, new = random_transition(rng, meta, devices, old)
            mapping = mapper.map_devices(meta, devices, new)
            plan = planner.plan(meta, mapping, {})
            ref_plan = reference.plan(meta, mapping, {})
            if plan.migration_time <= 0:
                continue
            window = plan.migration_time * float(rng.uniform(0.1, 0.9))
            tiered = planner.derive_tiered_plan(plan, window)
            if tiered is None:
                continue
            derived += 1
            assert_skeletons_byte_equal(tiered, ref_plan)
            # Infinite bandwidth: the spilled suffix is free, so the tiered
            # plan fits any window its direct prefix fits.
            assert tiered.spill_time == pytest.approx(0.0, abs=1e-12)
            assert tiered.restore_time == pytest.approx(0.0, abs=1e-12)
            assert tiered.window_time <= window
        assert derived > 0  # the chain genuinely exercised the derivation

    def test_near_zero_window_spills_everything(self):
        meta, devices, mapping = installed_transition()
        network = NetworkModel()
        network.offload_tier = self.INSTANT
        planner = MigrationPlanner(GPT_20B, network)
        plan = planner.plan(meta, mapping, {})
        # A window below any single direct step's duration (but above the
        # infinite tier's epsilon spill time) forces the all-spill split.
        tiered = planner.derive_tiered_plan(plan, 1e-6)
        assert tiered is not None
        assert tiered.direct_window_time == 0.0
        assert all(
            t.tier == "offload" for step in tiered.steps for t in step.transfers
        )
        assert_skeletons_byte_equal(tiered, plan)

    def test_useless_tier_reproduces_tierless_summary(
        self, useless_tier_run, tierless_run
    ):
        """A 1 B/s tier never derives a plan: byte-equal legacy behavior."""
        assert (
            useless_tier_run.stats.summary_text() == tierless_run.stats.summary_text()
        )

    def test_useless_tier_counts_its_fallbacks(self, useless_tier_run, tierless_run):
        assert useless_tier_run.stats.migration_fallbacks > 0
        assert (
            useless_tier_run.stats.spill_fallbacks
            == useless_tier_run.stats.migration_fallbacks
        )
        # Without a tier the miss is not a *spill* fallback.
        assert tierless_run.stats.spill_fallbacks == 0


class TestSpillProperties:
    """Randomized invariants of the tier-selection rule."""

    @pytest.mark.parametrize("seed", range(10))
    def test_spill_chosen_iff_direct_misses_deadline(self, seed):
        rng = np.random.default_rng(1000 + seed)
        model = GPT_20B if seed % 2 else OPT_6_7B
        meta, devices, old = random_fleet_state(rng, model)
        network = NetworkModel()
        network.offload_tier = OffloadTierSpec(
            spill_bandwidth=float(rng.uniform(0.5, 8.0)) * GB,
            restore_bandwidth=float(rng.uniform(0.5, 8.0)) * GB,
            per_spill_latency=float(rng.uniform(0.0, 0.2)),
        )
        # An active degraded window scales direct *and* tier bandwidths.
        factor = float(rng.choice([1.0, 2.0, 4.0]))
        network.degradation = lambda: factor
        planner = MigrationPlanner(model, network)
        mapper = DeviceMapper(model)
        checked = 0
        for round_index in range(3):
            devices, new = random_transition(rng, meta, devices, old)
            mapping = mapper.map_devices(meta, devices, new)
            plan = planner.plan(meta, mapping, {})
            if plan.migration_time <= 0:
                continue
            for fraction in (0.3, 0.7, 1.0, 1.5):
                window = plan.migration_time * fraction
                tiered = planner.derive_tiered_plan(plan, window)
                if plan.migration_time <= window:
                    # Direct fits: spilling is never chosen.
                    assert tiered is None
                elif tiered is not None:
                    # Spilling chosen: only because direct missed, and the
                    # chosen split itself never exceeds the deadline.
                    assert tiered.window_time <= window + 1e-9
                    assert tiered.spilled_bytes > 0
                checked += 1
        assert checked > 0

    @pytest.mark.parametrize("seed", range(6))
    def test_derivation_is_deterministic(self, seed):
        rng = np.random.default_rng(2000 + seed)
        meta, devices, old = random_fleet_state(rng, GPT_20B)
        network = NetworkModel()
        network.offload_tier = FAST_TIER
        planner = MigrationPlanner(GPT_20B, network)
        mapper = DeviceMapper(GPT_20B)
        devices, new = random_transition(rng, meta, devices, old)
        mapping = mapper.map_devices(meta, devices, new)
        plan = planner.plan(meta, mapping, {})
        if plan.migration_time <= 0:
            pytest.skip("empty transition drawn")
        window = plan.migration_time * 0.5
        first = planner.derive_tiered_plan(plan, window)
        second = planner.derive_tiered_plan(plan, window)
        if first is None:
            assert second is None
            return
        assert_skeletons_byte_equal(first, second)
        assert first.spill_time == second.spill_time
        assert first.restore_time == second.restore_time
        assert first.direct_window_time == second.direct_window_time
        assert [
            [t.tier for t in step.transfers] for step in first.steps
        ] == [[t.tier for t in step.transfers] for step in second.steps]

    def test_degradation_makes_feasibility_strictly_harder(self):
        planner, plan = TestDeriveTieredPlan.planner_and_plan()
        window = plan.migration_time * 0.5
        clean = planner.derive_tiered_plan(plan, window)
        assert clean is not None
        planner.network.degradation = lambda: 64.0
        degraded = planner.derive_tiered_plan(plan, window)
        # Under heavy degradation the same window either becomes infeasible
        # or requires spilling at least as late a suffix at a higher cost.
        if degraded is not None:
            assert degraded.spill_time >= clean.spill_time
            assert degraded.window_time <= window

    def test_scenario_reruns_are_byte_deterministic(self):
        scenario, arrivals = tiered_offload_scenario()
        one = run_tiered(scenario, arrivals)
        scenario2, arrivals2 = tiered_offload_scenario()
        two = run_tiered(scenario2, arrivals2)
        assert one.stats.summary_text() == two.stats.summary_text()
        assert one.stats.extended_summary_text() == two.stats.extended_summary_text()


class ProbingSystem(SpotServeSystem):
    """Asserts the spill-conservation invariant at every natural probe."""

    probes = 0
    inflight_probes = 0

    def _assert_spill_conserved(self):
        settled = self.stats.bytes_restored + self.stats.bytes_abandoned
        expected = settled + self.pending_spill_bytes()
        tolerance = 1e-6 * max(1.0, self.stats.bytes_spilled)
        assert abs(self.stats.bytes_spilled - expected) <= tolerance
        type(self).probes += 1
        if self.pending_spill_bytes() > 0:
            type(self).inflight_probes += 1

    def _execute_reconfiguration_event(self, event):
        super()._execute_reconfiguration_event(event)
        self._assert_spill_conserved()

    def _finish_reconfiguration(self, event):
        super()._finish_reconfiguration(event)
        self._assert_spill_conserved()

    def handle_preemption_final(self, instance):
        super().handle_preemption_final(instance)
        self._assert_spill_conserved()

    @classmethod
    def reset(cls):
        cls.probes = 0
        cls.inflight_probes = 0


class TestSpillConservation:
    def test_invariant_holds_at_every_probe(self):
        ProbingSystem.reset()
        scenario, arrivals = tiered_offload_scenario()
        result = run_tiered(scenario, arrivals, system_cls=ProbingSystem)
        assert ProbingSystem.probes > 0
        # At least one probe caught bytes parked in the tier mid-flight,
        # so the pending term is exercised, not vacuous.
        assert ProbingSystem.inflight_probes > 0
        assert result.stats.bytes_spilled > 0

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_invariant_holds_under_randomized_fault_mixes(self, seed):
        ProbingSystem.reset()
        scenario, arrivals = tiered_offload_scenario()
        rng = np.random.default_rng(seed)
        plan = FaultPlan(
            seed=seed,
            default_model=ZoneFaultModel(
                refusal_prob=float(rng.uniform(0.0, 0.3)),
                launch_failure_prob=float(rng.uniform(0.0, 0.2)),
                straggler_prob=float(rng.uniform(0.0, 0.4)),
                straggler_multiplier=3.0,
                early_preemption_prob=float(rng.uniform(0.1, 0.6)),
            ),
            degraded_windows=tiered_offload_fault_plan(scenario.duration).degraded_windows,
        )
        faulty = dataclasses.replace(scenario, fault_plan=plan)
        run_tiered(faulty, arrivals, system_cls=ProbingSystem)
        assert ProbingSystem.probes > 0

    def test_drained_run_settles_the_exact_equation(self, tiered_run):
        stats = tiered_run.stats
        assert stats.bytes_spilled > 0
        assert stats.bytes_spilled == pytest.approx(
            stats.bytes_restored + stats.bytes_abandoned
        )

    def test_destination_death_abandons_its_share(self):
        """A preemption landing inside the restore window abandons exactly
        the dead destination's parked bytes -- the rest still restores."""
        scenario, arrivals = tiered_offload_scenario()
        duration = scenario.duration
        zones = list(tiered_offload_market(duration))
        first = zones[0]
        events = sorted(
            list(first.trace.events)
            + [TraceEvent(0.25 * duration + 8, TraceEventKind.PREEMPT, 1)],
            key=lambda e: e.time,
        )
        zones[0] = dataclasses.replace(
            first, trace=dataclasses.replace(first.trace, events=events)
        )
        ProbingSystem.reset()
        result = run_tiered(
            dataclasses.replace(scenario, zones=tuple(zones)),
            arrivals,
            system_cls=ProbingSystem,
        )
        stats = result.stats
        assert stats.bytes_abandoned > 0
        assert stats.bytes_restored > 0
        assert stats.bytes_spilled == pytest.approx(
            stats.bytes_restored + stats.bytes_abandoned
        )

    def test_restores_count_only_positive_restores(self, tiered_run, tierless_run):
        assert tiered_run.stats.restores > 0
        assert tierless_run.stats.restores == 0
        assert tierless_run.stats.bytes_spilled == 0.0


class CountingTier(OffloadTierSpec):
    """A tier spec that counts every bandwidth consultation."""

    calls = {"spill": 0, "restore": 0}

    def spill_bandwidth_for(self, zone):
        CountingTier.calls["spill"] += 1
        return super().spill_bandwidth_for(zone)

    def restore_bandwidth_for(self, zone):
        CountingTier.calls["restore"] += 1
        return super().restore_bandwidth_for(zone)

    @classmethod
    def reset(cls):
        cls.calls = {"spill": 0, "restore": 0}


class TestGoldenDigestContract:
    """Legacy digests stay byte-identical -- pinned non-vacuously."""

    def test_counting_tier_counts_when_exercised(self):
        """The pin below is meaningful only if the counting model actually
        counts: drive a deadline miss and watch both counters move."""
        CountingTier.reset()
        network = NetworkModel()
        network.offload_tier = CountingTier(
            spill_bandwidth=1e6 * GB, restore_bandwidth=2e6 * GB
        )
        meta, devices, mapping = installed_transition()
        planner = MigrationPlanner(GPT_20B, network)
        plan = planner.plan(meta, mapping, {})
        tiered = planner.derive_tiered_plan(plan, plan.migration_time / 2)
        assert tiered is not None
        assert CountingTier.calls["spill"] > 0
        assert CountingTier.calls["restore"] > 0

    def test_single_zone_digest_survives_installed_tier(self):
        CountingTier.reset()
        scenario = stable_workload_scenario("OPT-6.7B", "AS", duration=400.0)
        options = scenario.options()
        options.offload_tier = CountingTier()
        result = run_serving_experiment(
            SpotServeSystem,
            scenario.model_name,
            scenario.trace,
            scenario.arrival_process(),
            duration=scenario.duration,
            drain_time=200.0,
            options=options,
            stream_arrivals=True,
        )
        assert digest(result) == SINGLE_ZONE_SHA256
        # The tier was installed yet never consulted: the golden run has no
        # deadline misses, so the pin is exact, not accidental.
        assert CountingTier.calls == {"spill": 0, "restore": 0}

    def test_multi_zone_digest_survives_installed_tier(self):
        CountingTier.reset()
        scenario, arrivals = multi_zone_fluctuating_scenario("OPT-6.7B", duration=600.0)
        options = scenario.options()
        options.offload_tier = CountingTier()
        result = run_serving_experiment(
            SpotServeSystem,
            scenario.model_name,
            trace=None,
            arrival_process=arrivals,
            duration=scenario.duration,
            drain_time=300.0,
            options=options,
            zones=scenario.zones,
            allow_spot_requests=True,
            stream_arrivals=True,
        )
        assert digest(result) == MULTI_ZONE_SHA256
        assert CountingTier.calls == {"spill": 0, "restore": 0}


class TestCounterPlacement:
    """The five new counters live in the extended summary only."""

    @staticmethod
    def stats_with_counters():
        stats = ServingStats(system_name="s", retain_requests=False)
        stats.bytes_spilled = 128.0 * GB
        stats.bytes_restored = 100.0 * GB
        stats.bytes_abandoned = 28.0 * GB
        stats.restores = 3
        stats.spill_fallbacks = 2
        return stats

    def test_defaults_are_zero(self):
        stats = ServingStats(system_name="s", retain_requests=False)
        for name in SPILL_COUNTERS:
            assert getattr(stats, name) == 0

    def test_counters_absent_from_legacy_summary(self):
        text = self.stats_with_counters().summary_text()
        for name in SPILL_COUNTERS:
            assert name not in text

    def test_counters_present_in_extended_summary(self):
        stats = self.stats_with_counters()
        extended = stats.extended_summary()
        for name in SPILL_COUNTERS:
            assert name in extended
        text = stats.extended_summary_text()
        for name in SPILL_COUNTERS:
            assert name in text

    def test_scenario_counters_reach_the_extended_text(self, tiered_run):
        text = tiered_run.stats.extended_summary_text()
        assert "bytes_spilled" in text and "restores" in text


class TestScenarioAcceptance:
    """Tiered spill preserves cache where the seed planner rerouted."""

    def test_fleet_cost_is_byte_equal(self, tiered_run, tierless_run):
        assert tiered_run.total_cost == tierless_run.total_cost
        assert tiered_run.cost_by_zone == tierless_run.cost_by_zone

    def test_strictly_fewer_migration_fallbacks(self, tiered_run, tierless_run):
        assert tierless_run.stats.migration_fallbacks > 0
        assert (
            tiered_run.stats.migration_fallbacks
            < tierless_run.stats.migration_fallbacks
        )

    def test_strictly_fewer_rerouted_requests(self, tiered_run, tierless_run):
        assert (
            tiered_run.stats.requests_rerouted < tierless_run.stats.requests_rerouted
        )

    def test_cache_preserved_through_the_tier(self, tiered_run):
        assert tiered_run.stats.restores > 0
        assert tiered_run.stats.bytes_spilled > 0
        assert tiered_run.stats.spill_fallbacks == 0

    def test_more_requests_complete(self, tiered_run, tierless_run):
        assert tiered_run.completed_requests > tierless_run.completed_requests

    def test_scenario_defaults(self):
        scenario, arrivals = tiered_offload_scenario()
        assert scenario.offload_tier is TIERED_OFFLOAD_TIER
        assert scenario.seed == TIERED_OFFLOAD_SEED
        assert scenario.autoscale_policy is None  # pinned fleet
        assert not scenario.allow_on_demand
        assert scenario.options().offload_tier is TIERED_OFFLOAD_TIER

    def test_fault_plan_is_degradation_only(self):
        plan = tiered_offload_fault_plan()
        assert plan.degraded_windows
        assert plan.default_model is None
        assert not plan.zone_models


@pytest.mark.filterwarnings("ignore:overflow encountered:RuntimeWarning")
class TestDrainDeferredGuard:
    """All-deferred zero-budget drain with overflowing live peaks."""

    @staticmethod
    def overflowing_steps(num_layers=3):
        steps = {}
        for layer in range(num_layers):
            step = MigrationStep(kind="weight", layer_index=layer)
            step.transfers.append(
                Transfer(
                    src=(f"src-{layer:02d}", 0),
                    dst=("shared-dst", 0),
                    size_bytes=1.7e308,
                )
            )
            steps[layer] = step
        return steps

    @staticmethod
    def planners(budget=0.0, with_tier=True):
        network = NetworkModel()
        if with_tier:
            network.offload_tier = TIERED_OFFLOAD_TIER
        fast = MigrationPlanner(GPT_20B, network, max_buffer_bytes=budget)
        reference = MigrationPlanner(
            GPT_20B, network, max_buffer_bytes=budget, fast_path=False
        )
        return fast, reference

    def test_overflowed_live_peaks_match_reference(self):
        """Astronomical sizes push every live peak to +inf: the fast drain
        must not confuse them with the +inf dead-column mask."""
        steps = self.overflowing_steps()
        model = SimpleNamespace(num_layers=3)
        mapping = SimpleNamespace(config=None)
        fast, reference = self.planners()
        fast.model = reference.model = model
        fast_order = fast._order_layers(steps, mapping)
        ref_order = reference._order_layers(steps, mapping)
        assert fast_order == ref_order
        assert sorted(fast_order) == list(range(3))

    def test_many_layers_all_deferred_zero_budget(self):
        rng = np.random.default_rng(42)
        steps = {}
        num_layers = 9
        for layer in range(num_layers):
            step = MigrationStep(kind="weight", layer_index=layer)
            for _ in range(int(rng.integers(1, 4))):
                step.transfers.append(
                    Transfer(
                        src=(f"src-{int(rng.integers(0, 4)):02d}", 0),
                        dst=(f"dst-{int(rng.integers(0, 2)):02d}", 0),
                        size_bytes=1.5e308,
                    )
                )
            steps[layer] = step
        model = SimpleNamespace(num_layers=num_layers)
        mapping = SimpleNamespace(config=None)
        fast, reference = self.planners()
        fast.model = reference.model = model
        fast_order = fast._order_layers(steps, mapping)
        assert fast_order == reference._order_layers(steps, mapping)
        assert sorted(fast_order) == list(range(num_layers))

    def test_guard_does_not_disturb_finite_ordering(self):
        rng = np.random.default_rng(7)
        steps = {}
        for layer in range(6):
            step = MigrationStep(kind="weight", layer_index=layer)
            step.transfers.append(
                Transfer(
                    src=(f"src-{layer % 3:02d}", 0),
                    dst=("dst-00", 1),
                    size_bytes=float(rng.integers(1, 64)) * GB / 16,
                )
            )
            steps[layer] = step
        model = SimpleNamespace(num_layers=6)
        mapping = SimpleNamespace(config=None)
        fast, reference = self.planners(budget=0.5 * GB)
        fast.model = reference.model = model
        assert fast._order_layers(steps, mapping) == reference._order_layers(
            steps, mapping
        )


class TestPerfHarnessWiring:
    """run_perf.py --check gains a guarded tiered_offload entry."""

    @staticmethod
    def load_run_perf():
        spec = importlib.util.spec_from_file_location(
            "run_perf", REPO_ROOT / "benchmarks" / "perf" / "run_perf.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def report(round_ms=5.0, events=50000.0):
        return {
            "adaptation_round_ms": round_ms,
            "sim_events_per_sec": events,
            "phases": {
                "map": {"seconds": 1.0, "calls": 10, "ms_per_call": 2.0},
                "plan": {"seconds": 1.0, "calls": 10, "ms_per_call": 2.0},
            },
        }

    def test_scenario_registered(self):
        run_perf = self.load_run_perf()
        assert "tiered_offload" in run_perf.SCENARIOS

    def test_committed_baseline_carries_all_four_guards(self):
        baseline = json.loads(
            (REPO_ROOT / "benchmarks" / "perf" / "baseline.json").read_text()
        )
        entry = baseline["scenarios"]["tiered_offload"]
        for guard in (
            "adaptation_round_ms",
            "map_ms_per_call",
            "plan_ms_per_call",
            "min_sim_events_per_sec",
        ):
            assert guard in entry

    def test_ci_matrix_includes_the_scenario(self):
        workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "--scenario tiered_offload" in workflow

    def baseline(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "scenarios": {
                        "tiered_offload": {
                            "adaptation_round_ms": 8.5,
                            "map_ms_per_call": 6.0,
                            "plan_ms_per_call": 6.5,
                            "min_sim_events_per_sec": 1800,
                        }
                    }
                }
            )
        )
        return path

    def test_round_regression_fails_the_check(self, tmp_path):
        run_perf = self.load_run_perf()
        report = self.report(round_ms=50.0)
        assert (
            run_perf.check_regression(
                {"tiered_offload": report}, self.baseline(tmp_path), 2.0
            )
            == 1
        )

    def test_events_floor_regression_fails_the_check(self, tmp_path):
        run_perf = self.load_run_perf()
        report = self.report(events=100.0)
        assert (
            run_perf.check_regression(
                {"tiered_offload": report}, self.baseline(tmp_path), 2.0
            )
            == 1
        )

    def test_healthy_report_passes_the_check(self, tmp_path):
        run_perf = self.load_run_perf()
        assert (
            run_perf.check_regression(
                {"tiered_offload": self.report()}, self.baseline(tmp_path), 2.0
            )
            == 0
        )

    def test_missing_phases_skip_their_guards(self, tmp_path):
        """A run without reconfiguring rounds skips map/plan, not fails."""
        run_perf = self.load_run_perf()
        report = self.report()
        report["phases"] = {}
        assert (
            run_perf.check_regression(
                {"tiered_offload": report}, self.baseline(tmp_path), 2.0
            )
            == 0
        )

    def test_measure_attaches_spill_counters(self):
        run_perf = self.load_run_perf()
        report = run_perf.measure("tiered_offload")
        assert report["spill_counters"]["bytes_spilled"] > 0
        assert report["spill_counters"]["restores"] > 0
        assert report["spill_counters"]["spill_fallbacks"] == 0


class TestPolicyBenchWiring:
    def test_scenario_joins_the_bench_matrix(self):
        assert "tiered_offload" in BENCH_SCENARIOS

    def test_build_cell_attaches_the_sizing_policy(self):
        scenario, arrivals, drain = build_cell("tiered_offload", "cost-aware")
        assert scenario.autoscale_policy == "cost-aware"
        assert scenario.offload_tier is TIERED_OFFLOAD_TIER
        assert scenario.seed == TIERED_OFFLOAD_SEED
        assert drain > 0

    def test_result_row_carries_spill_columns(self, tiered_run):
        row = result_row("tiered_offload", "fixed-fleet", tiered_run)
        assert row["bytes_spilled"] > 0
        assert row["restores"] > 0
        assert row["spill_fallbacks"] == 0
        assert row["migration_fallbacks"] == 0


class TestServerWiring:
    def test_options_default_is_none(self):
        assert SpotServeOptions().offload_tier is None

    def test_no_tier_keeps_network_untouched(self):
        scenario, arrivals = tiered_offload_scenario()
        assert (
            dataclasses.replace(scenario, offload_tier=None).options().offload_tier
            is None
        )

    def test_market_is_sized_for_the_big_model(self):
        zones = tiered_offload_market()
        assert sum(zone.trace.initial_instances for zone in zones) == 9
        # GPT-20B needs 12 GPUs (three 4-GPU instances): the preemption
        # waves must never sink the fleet below that floor.
        preempted = sum(
            event.count
            for zone in zones
            for event in zone.trace.events
            if event.kind is TraceEventKind.PREEMPT
        )
        assert 9 - preempted >= 3
