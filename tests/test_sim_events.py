"""Tests for the discrete-event simulation core."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import SimulationClock
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue, EventType


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_advance_to_moves_forward(self):
        clock = SimulationClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_to_rejects_backwards(self):
        clock = SimulationClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_advance_by_rejects_negative(self):
        clock = SimulationClock()
        with pytest.raises(ValueError):
            clock.advance_by(-1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock(-1.0)

    def test_reset(self):
        clock = SimulationClock(5.0)
        clock.reset()
        assert clock.now == 0.0


class TestEventQueue:
    def test_pop_orders_by_time(self):
        queue = EventQueue()
        queue.schedule(3.0)
        queue.schedule(1.0)
        queue.schedule(2.0)
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        first = queue.schedule(1.0, payload={"idx": 1})
        second = queue.schedule(1.0, payload={"idx": 2})
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        cancelled = queue.schedule(1.0)
        kept = queue.schedule(2.0)
        cancelled.cancel()
        assert queue.pop() is kept

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(Event(time=-1.0))

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        cancelled = queue.schedule(1.0)
        queue.schedule(5.0)
        cancelled.cancel()
        assert queue.peek_time() == 5.0

    def test_len_and_clear(self):
        queue = EventQueue()
        queue.schedule(1.0)
        queue.schedule(2.0)
        assert len(queue) == 2
        queue.clear()
        assert len(queue) == 0
        assert not queue

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_pop_is_monotone_nondecreasing(self, times):
        queue = EventQueue()
        for time in times:
            queue.schedule(time)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(popped)
        assert len(popped) == len(times)


class TestEventQueueCompaction:
    def test_len_counts_live_events_only(self):
        queue = EventQueue()
        events = [queue.schedule(float(i + 1)) for i in range(10)]
        events[3].cancel()
        events[7].cancel()
        assert len(queue) == 8

    def test_cancel_heavy_schedule_keeps_heap_bounded(self):
        # Emulates repeated batch interruption: every round schedules a
        # completion event and cancels it before it fires.  Without
        # compaction the heap grows by one dead entry per round.
        queue = EventQueue()
        for round_index in range(5000):
            event = queue.schedule(float(round_index + 1))
            event.cancel()
        assert len(queue) == 0
        assert len(queue._heap) < 128

    def test_compaction_preserves_pop_order(self):
        queue = EventQueue()
        events = [queue.schedule(float(i), payload={"idx": i}) for i in range(200)]
        for i, event in enumerate(events):
            if i % 2 == 0:
                event.cancel()
        popped = [queue.pop().payload["idx"] for _ in range(len(queue))]
        assert popped == [i for i in range(200) if i % 2 == 1]

    def test_compaction_preserves_same_time_insertion_order(self):
        queue = EventQueue()
        keep = []
        for i in range(300):
            event = queue.schedule(1.0, payload={"idx": i})
            if i % 3 == 0:
                keep.append(i)
            else:
                event.cancel()
        assert [queue.pop().payload["idx"] for _ in range(len(queue))] == keep

    def test_cancel_after_pop_is_harmless(self):
        queue = EventQueue()
        first = queue.schedule(1.0)
        queue.schedule(2.0)
        popped = queue.pop()
        assert popped is first
        popped.cancel()  # already dispatched: must not corrupt accounting
        assert len(queue) == 1
        assert queue.pop().time == 2.0

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        event = queue.schedule(1.0)
        queue.schedule(2.0)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_pop_next_respects_until(self):
        queue = EventQueue()
        queue.schedule(1.0)
        queue.schedule(10.0)
        assert queue.pop_next(until=5.0).time == 1.0
        assert queue.pop_next(until=5.0) is None
        assert queue.pop_next() is not None

    def test_interleaved_cancel_and_run_dispatches_survivors(self):
        sim = Simulator()
        fired = []
        pending = []
        for i in range(500):
            pending.append(
                sim.schedule_at(float(i + 1), EventType.GENERIC,
                                callback=lambda e: fired.append(e.time))
            )
        for i, event in enumerate(pending):
            if i % 5 != 0:
                event.cancel()
        sim.run()
        assert fired == [float(i + 1) for i in range(500) if i % 5 == 0]


class TestSimulator:
    def test_dispatch_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, EventType.GENERIC, callback=lambda e: seen.append(e.time))
        sim.run()
        assert seen == [2.0]
        assert sim.now == 2.0

    def test_handlers_receive_events_by_type(self):
        sim = Simulator()
        seen = []
        sim.on(EventType.REQUEST_ARRIVAL, lambda e: seen.append("arrival"))
        sim.on(EventType.GENERIC, lambda e: seen.append("generic"))
        sim.schedule_at(1.0, EventType.REQUEST_ARRIVAL)
        sim.schedule_at(2.0, EventType.GENERIC)
        sim.run()
        assert seen == ["arrival", "generic"]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        sim.schedule_at(1.0)
        sim.schedule_at(10.0)
        dispatched = sim.run(until=5.0)
        assert dispatched == 1
        assert sim.now == 5.0
        assert len(sim.queue) == 1

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(5.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0)

    def test_schedule_after_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_after(-1.0)

    def test_events_scheduled_during_dispatch_are_processed(self):
        sim = Simulator()
        seen = []

        def chain(event):
            seen.append(event.time)
            if event.time < 3.0:
                sim.schedule_after(1.0, EventType.GENERIC, callback=chain)

        sim.schedule_at(1.0, EventType.GENERIC, callback=chain)
        sim.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_max_events_bound(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule_at(float(i + 1))
        assert sim.run(max_events=4) == 4

    def test_step_returns_none_when_empty(self):
        assert Simulator().step() is None

    def test_dispatched_events_counter(self):
        sim = Simulator()
        sim.schedule_at(1.0)
        sim.schedule_at(2.0)
        sim.run()
        assert sim.dispatched_events == 2
