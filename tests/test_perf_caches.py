"""Cache-correctness tests for the adaptation-round fast path.

The fast path memoises controller estimates, feasible-config enumerations,
cost-model entry points and per-round reuse weights.  These tests pin the
two properties that make the caches safe: they are invalidated whenever an
input they depend on changes, and a fully cached run is byte-identical to a
fully uncached one.
"""

import pytest

from repro.core.config import ConfigurationSpace, ParallelConfig
from repro.core.controller import ParallelizationController
from repro.core.device_mapper import DeviceMapper
from repro.core.server import SpotServeSystem
from repro.engine.context import MetaContextManager
from repro.engine.placement import mesh_positions
from repro.experiments.runner import run_serving_experiment
from repro.experiments.scenarios import stable_workload_scenario
from repro.llm.costmodel import LatencyModel
from repro.llm.memory import MemoryModel
from repro.llm.profiler import OfflineProfiler
from repro.llm.spec import GPT_20B, OPT_6_7B


def make_controller(model=OPT_6_7B, **kwargs):
    latency = LatencyModel(model)
    memory = MemoryModel(model, latency.gpu)
    profiler = OfflineProfiler(latency, memory)
    space = ConfigurationSpace(model, memory, gpus_per_instance=4)
    return ParallelizationController(space, profiler, **kwargs)


class TestControllerMemo:
    def test_repeated_estimates_hit_the_memo(self):
        controller = make_controller()
        config = ParallelConfig(1, 2, 2, 4)
        first = controller.estimate(config, 0.35)
        # Identity (not merely equality): the memoised object is returned.
        assert controller.estimate(config, 0.35) is first

    def test_memoized_matches_unmemoized(self):
        cached = make_controller()
        uncached = make_controller(memoize=False)
        for rate in (0.05, 0.35, 2.0):
            for config in cached.config_space.feasible_configs(3):
                assert cached.estimate(config, rate) == uncached.estimate(config, rate)

    def test_profile_change_invalidates_memo(self):
        controller = make_controller()
        config = ParallelConfig(1, 2, 2, 4)
        before = controller.estimate(config, 0.35)
        # Re-profile with a different sequence length: latencies must change,
        # and the memo must not serve the stale estimate.
        controller.profiler.input_length = 2048
        controller.profiler.clear()
        after = controller.estimate(config, 0.35)
        assert after.execution_latency != before.execution_latency

    def test_fleet_space_change_invalidates_sweep(self):
        controller = make_controller(model=GPT_20B)
        space = controller.config_space
        full_sweep = controller._estimates(4, 0.35, allow_infinite=True)
        # Reserving a huge migration buffer shrinks the feasible space; the
        # memoised sweep for the same (fleet, rate) key must follow.
        space.migration_buffer_bytes = 8 * 1024 ** 3
        shrunk_sweep = controller._estimates(4, 0.35, allow_infinite=True)
        assert len(shrunk_sweep) < len(full_sweep)
        assert {e.config for e in shrunk_sweep} == set(space.feasible_configs(4))

    def test_propose_identical_with_and_without_memo(self):
        cached = make_controller()
        uncached = make_controller(memoize=False)
        for instances, rate in [(1, 0.1), (3, 0.35), (6, 1.5), (6, 50.0)]:
            a = cached.propose(instances, rate)
            b = uncached.propose(instances, rate)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.config == b.config
                assert a.objective == b.objective
                assert a.instance_delta == b.instance_delta


class TestFeasibleConfigCache:
    def test_cached_enumeration_is_stable_and_copied(self):
        space = ConfigurationSpace(GPT_20B, gpus_per_instance=4)
        first = space.feasible_configs(4)
        second = space.feasible_configs(4)
        assert first == second
        # Callers may mutate their copy without corrupting the cache.
        first.clear()
        assert space.feasible_configs(4) == second

    def test_buffer_change_bumps_generation_and_refreshes(self):
        space = ConfigurationSpace(GPT_20B, gpus_per_instance=4)
        baseline = space.feasible_configs(4)
        generation = space.generation
        space.migration_buffer_bytes = 8 * 1024 ** 3
        assert space.generation > generation
        assert len(space.feasible_configs(4)) < len(baseline)


def _install(meta, devices, config):
    positions = mesh_positions(
        config.data_degree, config.pipeline_degree, config.tensor_degree
    )
    for device, position in zip(devices, positions):
        meta.daemon(device).install_model_context(
            config.pipeline_degree, config.tensor_degree, position
        )


class TestMapperRoundCache:
    def devices(self, n, gpus=4):
        return [(f"inst-{i:02d}", g) for i in range(n) for g in range(gpus)]

    def test_round_cache_is_dropped_between_calls(self):
        meta = MetaContextManager(GPT_20B)
        devices = self.devices(6)
        config = ParallelConfig(2, 3, 4, 8)
        _install(meta, devices, config)
        mapper = DeviceMapper(GPT_20B)
        mapper.map_devices(meta, devices, config)
        assert mapper._round_weights is None
        assert mapper._round_stateless is None

    def test_context_change_between_rounds_is_observed(self):
        """A weight cached in round N must not leak into round N+1."""
        meta = MetaContextManager(GPT_20B)
        devices = self.devices(6)
        config = ParallelConfig(2, 3, 4, 8)
        _install(meta, devices, config)
        mapper = DeviceMapper(GPT_20B)
        warm = mapper.map_devices(meta, devices, config)
        assert warm.reused_bytes > 0
        # The fleet loses all its context (e.g. every instance restarted).
        for device in devices:
            meta.drop_instance(device[0])
        cold = mapper.map_devices(meta, devices, config)
        assert cold.reused_bytes == pytest.approx(0.0)

    def test_cached_mapping_matches_uncached(self):
        meta = MetaContextManager(GPT_20B)
        devices = self.devices(6)
        old = ParallelConfig(2, 3, 4, 8)
        new = ParallelConfig(1, 2, 8, 8)
        _install(meta, devices, old)
        cached = DeviceMapper(GPT_20B, cache_weights=True).map_devices(
            meta, devices, new
        )
        uncached = DeviceMapper(GPT_20B, cache_weights=False).map_devices(
            meta, devices, new
        )
        assert cached.placement == uncached.placement
        assert cached.reused_bytes == pytest.approx(uncached.reused_bytes)
        assert cached.required_bytes == pytest.approx(uncached.required_bytes)

    def test_stateless_fleet_mapping_matches_uncached(self):
        # Stateless instances take the skip-the-solve path; the placement
        # must equal the one the full Kuhn-Munkres pipeline produces.
        meta = MetaContextManager(GPT_20B)
        devices = self.devices(6)
        config = ParallelConfig(2, 3, 4, 8)
        cached = DeviceMapper(GPT_20B, cache_weights=True).map_devices(
            meta, devices, config
        )
        uncached = DeviceMapper(GPT_20B, cache_weights=False).map_devices(
            meta, devices, config
        )
        assert cached.placement == uncached.placement


class UncachedSpotServe(SpotServeSystem):
    """SpotServe with every fast-path cache disabled (digest cross-check)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.controller.memoize = False
        self.device_mapper.cache_weights = False
        self.latency_model.disable_caches()


class TestCachedRunsAreByteIdentical:
    def test_golden_scenario_digest_identical_with_caches_off(self):
        def run(system_cls):
            scenario = stable_workload_scenario("OPT-6.7B", "AS", duration=400.0)
            return run_serving_experiment(
                system_cls,
                scenario.model_name,
                scenario.trace,
                scenario.arrival_process(),
                duration=scenario.duration,
                drain_time=200.0,
                options=scenario.options(),
            )

        cached = run(SpotServeSystem)
        uncached = run(UncachedSpotServe)
        assert cached.stats.summary_text() == uncached.stats.summary_text()
        assert cached.total_cost == uncached.total_cost
