"""Golden determinism regression: same seed + same trace => identical runs.

Every stochastic component (victim RNG, workload draws, price schedules) is
seeded, so two full ``SpotServeSystem`` runs with identical inputs must
produce *byte-identical* :meth:`ServingStats.summary_text` digests -- any
hidden dependence on object identity, dict ordering or wall-clock would show
up here.  The check covers both the classic single-zone paper scenario and
the new multi-zone autoscaling scenario.
"""

import pytest

from repro.core.server import SpotServeSystem
from repro.experiments.runner import run_serving_experiment
from repro.experiments.scenarios import (
    multi_zone_fluctuating_scenario,
    stable_workload_scenario,
)


def run_single_zone():
    scenario = stable_workload_scenario("OPT-6.7B", "AS", duration=400.0)
    result = run_serving_experiment(
        SpotServeSystem,
        scenario.model_name,
        scenario.trace,
        scenario.arrival_process(),
        duration=scenario.duration,
        drain_time=200.0,
        options=scenario.options(),
    )
    return result


def run_multi_zone():
    scenario, arrivals = multi_zone_fluctuating_scenario("OPT-6.7B", duration=600.0)
    result = run_serving_experiment(
        SpotServeSystem,
        scenario.model_name,
        trace=None,
        arrival_process=arrivals,
        duration=scenario.duration,
        drain_time=300.0,
        options=scenario.options(),
        zones=scenario.zones,
        allow_spot_requests=True,
    )
    return result


class TestGoldenDeterminism:
    def test_single_zone_runs_are_byte_identical(self):
        first = run_single_zone()
        second = run_single_zone()
        assert first.stats.summary_text() == second.stats.summary_text()
        assert first.total_cost == second.total_cost
        assert first.latency.mean == second.latency.mean

    def test_multi_zone_runs_are_byte_identical(self):
        first = run_multi_zone()
        second = run_multi_zone()
        assert first.stats.summary_text() == second.stats.summary_text()
        assert first.cost_by_zone == second.cost_by_zone
        assert first.latency.p99 == second.latency.p99

    def test_different_seeds_actually_diverge(self):
        # Sanity check that the digest is sensitive to the workload at all:
        # with a different seed the summaries must differ.
        base = stable_workload_scenario("OPT-6.7B", "AS", duration=400.0)
        other = stable_workload_scenario("OPT-6.7B", "AS", duration=400.0, seed=base.seed + 1)
        results = [
            run_serving_experiment(
                SpotServeSystem,
                scenario.model_name,
                scenario.trace,
                scenario.arrival_process(),
                duration=scenario.duration,
                drain_time=200.0,
                options=scenario.options(),
            )
            for scenario in (base, other)
        ]
        assert results[0].stats.summary_text() != results[1].stats.summary_text()
