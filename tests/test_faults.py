"""Tests for the cloud-fault injection layer and the acquisition resilience.

Four claims are pinned here:

* **Determinism** -- every fault kind draws from its own named seeded
  stream, so identical plans reproduce identical fault sequences and
  enabling one fault kind never perturbs another's draws.
* **Digest neutrality** -- installing an injector with a *null* plan leaves
  the two frozen golden digests byte-identical, and the test counts the
  hook invocations so the claim is not vacuous (the hooks really ran).
* **Resilience accounting** -- every refused or failed acquisition is
  either satisfied by a bounded-backoff retry or reported in the terminal
  ``allocation_shortfall`` counter (with per-round detail on the
  :class:`~repro.core.stats.AutoscaleRecord`).
* **Conservation under chaos** -- ``submitted == completed + unfinished +
  dropped + rejected + shed`` holds at random mid-run probe points under
  randomized fault mixes, and the Section 4.2 early-preemption path is
  exercised end to end through the real event path.
"""

import dataclasses
import hashlib
import random

import pytest

from repro.cloud.provider import CloudProvider
from repro.core.server import SpotServeOptions, SpotServeSystem
from repro.experiments.runner import run_scenario_experiment, run_serving_experiment
from repro.experiments.scenarios import (
    chaos_fault_plan,
    chaos_scenario,
    multi_zone_fluctuating_scenario,
    stable_workload_scenario,
)
from repro.faults.injector import (
    DegradedWindow,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    ZoneFaultModel,
)
from repro.llm.spec import get_model
from repro.sim.engine import Simulator

# The frozen golden digests (see tests/test_streaming_equivalence.py): the
# fault hooks must not move them while no fault plan is active.
SINGLE_ZONE_SHA256 = "13bd9e142347b849dcba2c5f52829a5ca9c7638ccb40c83512c45d80ce4d64b5"
MULTI_ZONE_SHA256 = "33c8a35b9b2764488dda4379defb50adea6283cafdcfed7618b22167ecc8502c"


# ----------------------------------------------------------------------
# Plan / model / policy unit behaviour
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_default_model_is_null(self):
        assert ZoneFaultModel().is_null
        assert FaultPlan().is_null

    def test_zone_model_overrides_default(self):
        harsh = ZoneFaultModel(refusal_prob=0.5)
        mild = ZoneFaultModel(refusal_prob=0.1)
        plan = FaultPlan(default_model=mild, zone_models=(("us-east-1a", harsh),))
        assert plan.model_for("us-east-1a") is harsh
        assert plan.model_for("us-west-2a") is mild
        assert not plan.is_null

    def test_plan_is_hashable_and_picklable(self):
        import pickle

        plan = chaos_fault_plan(900.0, seed=3)
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))

    def test_degraded_window_boundaries(self):
        window = DegradedWindow(start=100.0, end=200.0, bandwidth_factor=4.0)
        assert window.factor_at(99.9) == 1.0
        assert window.factor_at(100.0) == 4.0
        assert window.factor_at(199.9) == 4.0
        assert window.factor_at(200.0) == 1.0

    def test_overlapping_windows_compound(self):
        plan = FaultPlan(
            degraded_windows=(
                DegradedWindow(0.0, 100.0, 2.0),
                DegradedWindow(50.0, 150.0, 3.0),
            )
        )
        injector = FaultInjector(plan)
        assert injector.bandwidth_factor(25.0) == 2.0
        assert injector.bandwidth_factor(75.0) == 6.0
        assert injector.bandwidth_factor(125.0) == 3.0
        assert injector.bandwidth_factor(175.0) == 1.0


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay=2.0, max_delay=30.0, jitter=0.0)
        assert [policy.delay(a, 0.0) for a in range(6)] == [
            2.0,
            4.0,
            8.0,
            16.0,
            30.0,
            30.0,
        ]

    def test_jitter_scales_with_draw(self):
        policy = RetryPolicy(base_delay=2.0, jitter=0.25)
        assert policy.delay(0, 0.0) == 2.0
        assert policy.delay(0, 1.0) == pytest.approx(2.5)

    def test_delay_is_pure(self):
        policy = RetryPolicy()
        assert policy.delay(3, 0.5) == policy.delay(3, 0.5)


class TestInjectorDeterminism:
    def test_same_plan_same_draws(self):
        plan = chaos_fault_plan(900.0, seed=11)
        a, b = FaultInjector(plan), FaultInjector(plan)
        for injector in (a, b):
            injector.refused_count("us-east-1a", "spot", 5)
        assert a.counters == b.counters
        assert a.launch_delay_multiplier("us-east-1a") == b.launch_delay_multiplier(
            "us-east-1a"
        )
        assert a.launch_failure_at("us-east-1a", 0.0, 40.0) == b.launch_failure_at(
            "us-east-1a", 0.0, 40.0
        )
        assert a.early_reclaim_time("us-east-1a", 0.0, 30.0) == b.early_reclaim_time(
            "us-east-1a", 0.0, 30.0
        )
        assert a.retry_jitter("us-east-1a") == b.retry_jitter("us-east-1a")

    def test_fault_kinds_draw_from_independent_streams(self):
        # Consuming one kind's stream must not change another kind's draws.
        plan = chaos_fault_plan(900.0, seed=7)
        reference = FaultInjector(plan).launch_delay_multiplier("us-east-1a")
        perturbed = FaultInjector(plan)
        perturbed.refused_count("us-east-1a", "spot", 100)
        perturbed.early_reclaim_time("us-east-1a", 0.0, 30.0)
        assert perturbed.launch_delay_multiplier("us-east-1a") == reference

    def test_null_probabilities_consume_no_entropy(self):
        injector = FaultInjector(FaultPlan(default_model=ZoneFaultModel()))
        assert injector.refused_count("z", "spot", 10) == 0
        assert injector.launch_delay_multiplier("z") == 1.0
        assert injector.launch_failure_at("z", 0.0, 40.0) is None
        assert injector.early_reclaim_time("z", 0.0, 30.0) is None
        # Probability-zero kinds short-circuit before touching any stream.
        assert injector._streams == {}

    def test_refusal_bounds_and_counter(self):
        always = FaultInjector(
            FaultPlan(default_model=ZoneFaultModel(refusal_prob=1.0))
        )
        assert always.refused_count("z", "spot", 4) == 4
        assert always.counters["allocation_refusals"] == 4
        never = FaultInjector(FaultPlan(default_model=ZoneFaultModel()))
        assert never.refused_count("z", "spot", 4) == 0

    def test_launch_failure_time_inside_launch_window(self):
        injector = FaultInjector(
            FaultPlan(default_model=ZoneFaultModel(launch_failure_prob=1.0))
        )
        failure = injector.launch_failure_at("z", 100.0, 140.0)
        assert failure is not None
        assert 100.0 <= failure < 140.0

    def test_early_reclaim_respects_min_grace_fraction(self):
        injector = FaultInjector(
            FaultPlan(
                default_model=ZoneFaultModel(
                    early_preemption_prob=1.0, min_grace_fraction=0.5
                )
            )
        )
        for _ in range(20):
            reclaim = injector.early_reclaim_time("z", 100.0, 130.0)
            assert reclaim is not None
            assert 115.0 <= reclaim < 130.0

    def test_bound_stats_mirror(self):
        from repro.core.stats import ServingStats

        stats = ServingStats()
        injector = FaultInjector(
            FaultPlan(default_model=ZoneFaultModel(refusal_prob=1.0))
        )
        injector.bind_stats(stats)
        injector.refused_count("z", "spot", 3)
        assert stats.allocation_refusals == 3
        assert injector.counters["allocation_refusals"] == 3


# ----------------------------------------------------------------------
# Digest neutrality: a null-plan injector is installed, consulted, and
# changes nothing (the non-vacuous hooks-installed guarantee)
# ----------------------------------------------------------------------
class _CountingInjector(FaultInjector):
    """Counts hook invocations so the neutrality claim is not vacuous."""

    def __init__(self, plan=None):
        super().__init__(plan)
        self.calls = {
            "refused": 0,
            "straggler": 0,
            "launch_failure": 0,
            "early_reclaim": 0,
            "bandwidth": 0,
        }

    def refused_count(self, zone, market, requested):
        self.calls["refused"] += 1
        return super().refused_count(zone, market, requested)

    def launch_delay_multiplier(self, zone):
        self.calls["straggler"] += 1
        return super().launch_delay_multiplier(zone)

    def launch_failure_at(self, zone, now, ready_at):
        self.calls["launch_failure"] += 1
        return super().launch_failure_at(zone, now, ready_at)

    def early_reclaim_time(self, zone, now, deadline):
        self.calls["early_reclaim"] += 1
        return super().early_reclaim_time(zone, now, deadline)

    def bandwidth_factor(self, time):
        self.calls["bandwidth"] += 1
        return super().bandwidth_factor(time)


class TestDigestNeutrality:
    def test_single_zone_golden_with_null_injector(self):
        injector = _CountingInjector(FaultPlan())
        scenario = stable_workload_scenario("OPT-6.7B", "AS", duration=400.0)
        options = scenario.options()
        options.fault_injector = injector
        result = run_serving_experiment(
            SpotServeSystem,
            scenario.model_name,
            scenario.trace,
            scenario.arrival_process(),
            duration=scenario.duration,
            drain_time=200.0,
            options=options,
        )
        digest = hashlib.sha256(result.stats.summary_text().encode()).hexdigest()
        assert digest == SINGLE_ZONE_SHA256
        # The hooks really ran: preemption notices consulted the early
        # reclaim draw, migrations consulted the degradation hook.
        assert injector.calls["early_reclaim"] > 0
        assert injector.calls["bandwidth"] > 0
        # ...and a null plan never materialises an RNG stream.
        assert injector._streams == {}

    def test_multi_zone_golden_with_null_injector(self):
        injector = _CountingInjector(FaultPlan())
        scenario, arrivals = multi_zone_fluctuating_scenario(
            "OPT-6.7B", duration=600.0
        )
        options = scenario.options()
        options.fault_injector = injector
        result = run_serving_experiment(
            SpotServeSystem,
            scenario.model_name,
            trace=None,
            arrival_process=arrivals,
            duration=scenario.duration,
            drain_time=300.0,
            options=options,
            zones=scenario.zones,
            allow_spot_requests=True,
        )
        digest = hashlib.sha256(result.stats.summary_text().encode()).hexdigest()
        assert digest == MULTI_ZONE_SHA256
        # All five hook kinds are on the consulted path here: the autoscaler
        # allocates (refusal + straggler + launch-failure draws), the trace
        # preempts (early-reclaim draws), migrations ask for bandwidth.
        assert all(count > 0 for count in injector.calls.values()), injector.calls
        assert injector._streams == {}
        fault_counters = (
            result.stats.allocation_refusals,
            result.stats.launch_failures,
            result.stats.acquisition_retries,
            result.stats.early_preemptions,
            result.stats.migration_fallbacks,
            result.stats.allocation_shortfall,
        )
        assert fault_counters == (0, 0, 0, 0, 0, 0)

    def test_fault_counters_stay_out_of_legacy_summary(self):
        from repro.core.stats import ServingStats

        text = ServingStats().summary_text()
        for key in (
            "allocation_refusals",
            "launch_failures",
            "acquisition_retries",
            "early_preemptions",
            "migration_fallbacks",
            "allocation_shortfall",
        ):
            assert key not in text
            assert f"{key}=0" in ServingStats().extended_summary_text()


# ----------------------------------------------------------------------
# Resilience accounting: retries, watchdog, shortfall
# ----------------------------------------------------------------------
def _run_fluctuating_with_plan(plan, options_mutator=None, duration=600.0):
    scenario, arrivals = multi_zone_fluctuating_scenario("OPT-6.7B", duration=duration)
    scenario = dataclasses.replace(scenario, fault_plan=plan)
    options = scenario.options()
    if options_mutator is not None:
        options_mutator(options)
    return run_scenario_experiment(
        scenario, arrivals, drain_time=300.0, options=options
    )


class TestResilienceAccounting:
    def test_refusals_are_chased_by_retries(self):
        # Moderate refusal rates are absorbed *within* one allocation call
        # (the provider walks every zone), so an aggressive rate is needed
        # before whole rounds come up short and the backoff machinery runs.
        plan = FaultPlan(
            seed=1, default_model=ZoneFaultModel(refusal_prob=0.8)
        )
        result = _run_fluctuating_with_plan(plan)
        stats = result.stats
        assert stats.allocation_refusals > 0
        assert stats.acquisition_retries > 0
        # Bounded backoff found capacity eventually: nothing terminally lost.
        assert stats.allocation_shortfall == 0

    def test_retries_disabled_reports_terminal_shortfall(self):
        plan = FaultPlan(
            seed=2, default_model=ZoneFaultModel(refusal_prob=0.9)
        )

        def disable_retries(options):
            options.acquisition_retries = False

        result = _run_fluctuating_with_plan(plan, disable_retries)
        stats = result.stats
        assert stats.allocation_refusals > 0
        assert stats.acquisition_retries == 0
        assert stats.allocation_shortfall > 0
        # Per-round detail rides on the autoscale records.
        rounds_with_shortfall = [
            record
            for record in stats.autoscale_actions
            if record.shortfall_total > 0
        ]
        assert rounds_with_shortfall
        assert all(
            record.shortfall_total == sum(record.shortfall.values())
            for record in rounds_with_shortfall
        )

    def test_total_refusals_never_exceed_requests_plus_retries(self):
        # Every refused instance is either re-requested (a retry fired) or
        # reported terminally; the exhaustion path strictly bounds retries.
        plan = FaultPlan(seed=3, default_model=ZoneFaultModel(refusal_prob=1.0))
        policy = RetryPolicy(base_delay=1.0, max_delay=4.0, max_attempts=3)

        def tighten(options):
            options.retry_policy = policy

        result = _run_fluctuating_with_plan(plan, tighten)
        stats = result.stats
        assert stats.allocation_refusals > 0
        assert stats.acquisition_retries > 0
        # With refusal_prob=1.0 no retry can ever succeed: after the bounded
        # attempts the unmet demand must land in the shortfall counter.
        assert stats.allocation_shortfall > 0

    def test_launch_failures_trigger_rerequests(self):
        plan = FaultPlan(
            seed=4, default_model=ZoneFaultModel(launch_failure_prob=1.0)
        )
        result = _run_fluctuating_with_plan(plan)
        stats = result.stats
        assert stats.launch_failures > 0
        assert stats.acquisition_retries > 0

    def test_straggler_launches_hit_the_watchdog(self):
        # Every launch is a straggler stretched up to 10x the nominal 40 s
        # startup delay; the watchdog (3x) abandons the stuck ones and
        # re-requests, which is the only way acquisition_retries can move
        # here (refusals and launch failures are off).
        plan = FaultPlan(
            seed=5,
            default_model=ZoneFaultModel(
                straggler_prob=1.0, straggler_multiplier=10.0
            ),
        )
        result = _run_fluctuating_with_plan(plan)
        stats = result.stats
        assert stats.allocation_refusals == 0
        assert stats.launch_failures == 0
        assert result.stats.acquisition_retries > 0

    def test_pending_retries_suppress_autoscaler_rerequests(self):
        # The autoscaler treats in-flight retries as committed capacity; a
        # high-refusal run must not acquire beyond its committed plans (the
        # double-request pathology would show up as acquisitions far above
        # the fleet bound).
        plan = FaultPlan(seed=6, default_model=ZoneFaultModel(refusal_prob=0.7))
        result = _run_fluctuating_with_plan(plan)
        scenario, _ = multi_zone_fluctuating_scenario("OPT-6.7B", duration=600.0)
        granted_total = sum(
            sum(record.acquired.values()) for record in result.stats.autoscale_actions
        )
        assert granted_total <= scenario.max_instances * 3


# ----------------------------------------------------------------------
# End-to-end early preemption (Section 4.2 through the real event path)
# ----------------------------------------------------------------------
class TestEarlyPreemptionEndToEnd:
    def test_injected_early_reclaims_hit_the_rearrangement_path(self):
        plan = FaultPlan(
            seed=0,
            default_model=ZoneFaultModel(
                early_preemption_prob=1.0, min_grace_fraction=0.2
            ),
        )
        result = _run_fluctuating_with_plan(plan)
        stats = result.stats
        # The trace preempts several times and every reclaim fires early.
        assert stats.preemption_notices > 0
        assert stats.early_preemptions > 0
        # Conservation: early reclaims reroute, they never drop.
        assert stats.requests_dropped == 0
        assert result.completed_requests > 0

    def test_early_preemption_run_is_deterministic(self):
        plan = FaultPlan(
            seed=9,
            default_model=ZoneFaultModel(
                early_preemption_prob=0.8, min_grace_fraction=0.25
            ),
        )
        first = _run_fluctuating_with_plan(plan)
        second = _run_fluctuating_with_plan(plan)
        assert (
            first.stats.extended_summary_text()
            == second.stats.extended_summary_text()
        )


# ----------------------------------------------------------------------
# Conservation under randomized fault mixes, probed mid-run
# ----------------------------------------------------------------------
class TestConservationUnderChaos:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_conservation_holds_at_random_probe_points(self, seed):
        rng = random.Random(seed)
        plan = FaultPlan(
            seed=seed,
            default_model=ZoneFaultModel(
                refusal_prob=rng.uniform(0.0, 0.5),
                launch_failure_prob=rng.uniform(0.0, 0.3),
                straggler_prob=rng.uniform(0.0, 0.5),
                straggler_multiplier=1.0 + 3.0 * rng.random(),
                early_preemption_prob=rng.uniform(0.0, 1.0),
                min_grace_fraction=0.2,
            ),
            degraded_windows=(
                DegradedWindow(
                    start=rng.uniform(50.0, 200.0),
                    end=rng.uniform(250.0, 550.0),
                    bandwidth_factor=rng.uniform(1.0, 12.0),
                ),
            ),
        )
        scenario, arrivals = chaos_scenario(
            "OPT-6.7B", duration=600.0, target_requests=8000
        )
        scenario = dataclasses.replace(scenario, fault_plan=plan)

        simulator = Simulator()
        provider = CloudProvider(
            simulator,
            None,
            zones=scenario.zones,
            allow_spot_requests=True,
            fault_injector=FaultInjector(plan),
        )
        system = SpotServeSystem(
            simulator,
            provider,
            get_model(scenario.model_name),
            options=scenario.options(),
            initial_arrival_rate=max(
                arrivals.count_arrivals(scenario.duration) / scenario.duration, 1e-3
            ),
        )
        system.submit_arrival_process(arrivals, scenario.duration)
        system.initialize()

        probes = sorted(rng.uniform(1.0, 780.0) for _ in range(12)) + [780.0]
        for until in probes:
            simulator.run(until=until)
            stats = system.stats
            assert system.submitted_requests == (
                stats.completed_count
                + system.unfinished_request_count()
                + stats.requests_dropped
                + stats.requests_rejected
                + stats.requests_shed
            ), f"conservation violated under fault seed {seed} at t={until}"
        assert system.stats.requests_dropped == 0

    def test_chaos_scenario_exercises_every_fault_path(self):
        scenario, arrivals = chaos_scenario("OPT-6.7B")
        result = run_scenario_experiment(scenario, arrivals, drain_time=300.0)
        stats = result.stats
        assert stats.allocation_refusals > 0
        assert stats.launch_failures > 0
        assert stats.acquisition_retries > 0
        assert stats.early_preemptions > 0
        assert stats.migration_fallbacks > 0
        assert stats.zone_outages == 1
        assert stats.requests_dropped == 0
        # Final conservation: whatever was not completed is still accounted.
        assert result.completed_requests + result.unserved_requests == (
            result.submitted_requests
        )

    def test_chaos_scenario_is_deterministic(self):
        scenario, arrivals = chaos_scenario("OPT-6.7B")
        first = run_scenario_experiment(scenario, arrivals, drain_time=300.0)
        scenario2, arrivals2 = chaos_scenario("OPT-6.7B")
        second = run_scenario_experiment(scenario2, arrivals2, drain_time=300.0)
        assert (
            first.stats.extended_summary_text()
            == second.stats.extended_summary_text()
        )
