"""Tests for the KM-based device mapper."""

import pytest

from repro.core.config import ParallelConfig
from repro.core.device_mapper import DeviceMapper
from repro.engine.batching import Batch
from repro.engine.context import MetaContextManager
from repro.engine.placement import TopologyPosition, mesh_positions, position_model_bytes
from repro.llm.spec import GPT_20B, OPT_6_7B
from repro.workload.request import Request


def devices_for(num_instances, gpus_per_instance=4):
    return [
        (f"inst-{i:02d}", g)
        for i in range(num_instances)
        for g in range(gpus_per_instance)
    ]


def install_configuration(meta, devices, config):
    """Install model contexts as if *config* were already deployed on *devices*."""
    positions = mesh_positions(config.data_degree, config.pipeline_degree, config.tensor_degree)
    placement = dict(zip(devices, positions))
    for device, position in placement.items():
        meta.daemon(device).install_model_context(
            config.pipeline_degree, config.tensor_degree, position
        )
    return placement


class TestMapping:
    def test_same_configuration_reuses_everything(self):
        meta = MetaContextManager(GPT_20B)
        devices = devices_for(6)
        config = ParallelConfig(2, 3, 4, 8)
        install_configuration(meta, devices, config)
        mapper = DeviceMapper(GPT_20B)
        mapping = mapper.map_devices(meta, devices, config)
        assert mapping.reuse_fraction == pytest.approx(1.0)
        assert mapping.transfer_bytes == pytest.approx(0.0, abs=1e-3)

    def test_empty_cluster_requires_full_transfer(self):
        meta = MetaContextManager(GPT_20B)
        devices = devices_for(6)
        config = ParallelConfig(2, 3, 4, 8)
        mapping = DeviceMapper(GPT_20B).map_devices(meta, devices, config)
        assert mapping.reused_bytes == pytest.approx(0.0)
        assert mapping.required_bytes > 0
        assert mapping.reuse_fraction == 0.0

    def test_every_position_gets_a_device(self):
        meta = MetaContextManager(GPT_20B)
        devices = devices_for(6)
        old = ParallelConfig(2, 3, 4, 8)
        new = ParallelConfig(1, 2, 8, 8)
        install_configuration(meta, devices, old)
        mapping = DeviceMapper(GPT_20B).map_devices(meta, devices, new)
        assert mapping.unassigned_positions == []
        assert len(set(mapping.placement.values())) == new.num_gpus

    def test_not_enough_devices_rejected(self):
        meta = MetaContextManager(GPT_20B)
        with pytest.raises(ValueError):
            DeviceMapper(GPT_20B).map_devices(meta, devices_for(1), ParallelConfig(2, 3, 4, 8))

    def test_optimal_reuses_at_least_as_much_as_greedy_and_arbitrary(self):
        meta = MetaContextManager(GPT_20B)
        devices = devices_for(4)
        old = ParallelConfig(2, 2, 4, 8)
        new = ParallelConfig(1, 4, 4, 8)
        install_configuration(meta, devices, old)

        optimal = DeviceMapper(GPT_20B, use_optimal_matching=True).map_devices(
            meta, devices, new
        )
        greedy = DeviceMapper(GPT_20B, use_optimal_matching=False).map_devices(
            meta, devices, new
        )
        assert optimal.reused_bytes >= greedy.reused_bytes - 1e-6

        # An arbitrary (identity-order) placement is never better than KM.
        positions = mesh_positions(new.data_degree, new.pipeline_degree, new.tensor_degree)
        arbitrary = dict(zip(devices, positions))
        mapper = DeviceMapper(GPT_20B)
        arbitrary_reuse = sum(
            mapper.reuse_weight(meta, device, position, new)
            for device, position in arbitrary.items()
        )
        assert optimal.reused_bytes >= arbitrary_reuse - 1e-6

    def test_reconfiguration_between_paper_configs_reuses_substantial_context(self):
        """Figure 4a's transition (D=1, P=2, M=8) -> (D=1, P=3, M=4) keeps a
        substantial fraction of the model context in place (each new position
        can reuse at most half of its slice because the shard width doubles)."""
        meta = MetaContextManager(GPT_20B)
        devices = devices_for(4)
        old = ParallelConfig(1, 2, 8, 8)
        install_configuration(meta, devices, old)
        new = ParallelConfig(1, 3, 4, 8)
        mapping = DeviceMapper(GPT_20B).map_devices(meta, devices, new)
        assert mapping.reuse_fraction > 0.25
        assert mapping.transfer_bytes < mapping.required_bytes

    def test_cache_reuse_prefers_inheriting_pipeline(self):
        """Figure 4b: the device holding pipeline 0's KV cache should be
        mapped into the new pipeline that inherits pipeline 0's requests."""
        meta = MetaContextManager(OPT_6_7B)
        devices = devices_for(2)
        old = ParallelConfig(2, 2, 2, 4)
        placement = install_configuration(meta, devices, old)
        # Only pipeline 0 has decoding progress worth caching.
        for device, position in placement.items():
            if position.data_index == 0:
                meta.daemon(device).install_cache_context(
                    old.pipeline_degree,
                    old.tensor_degree,
                    position,
                    batch_size=4,
                    cached_tokens=600,
                )
        new = ParallelConfig(2, 2, 2, 4)
        mapping = DeviceMapper(OPT_6_7B).map_devices(
            meta, devices, new, pipeline_inheritance={0: 0, 1: 1}
        )
        holders = [
            device
            for device, position in placement.items()
            if position.data_index == 0
        ]
        for device in holders:
            assert mapping.placement[device].data_index == 0

    def test_hierarchical_matches_flat_reuse_on_aligned_groups(self):
        meta = MetaContextManager(GPT_20B)
        devices = devices_for(6)
        old = ParallelConfig(2, 3, 4, 8)
        install_configuration(meta, devices, old)
        new = ParallelConfig(2, 3, 4, 8)
        flat = DeviceMapper(GPT_20B, hierarchical=False).map_devices(meta, devices, new)
        hier = DeviceMapper(GPT_20B, hierarchical=True).map_devices(meta, devices, new)
        assert hier.reused_bytes == pytest.approx(flat.reused_bytes, rel=1e-6)


class TestBatchSelection:
    def test_keeps_most_advanced_batches(self):
        batches = []
        for progress in (3, 10, 7):
            batch = Batch([Request(arrival_time=0.0, output_tokens=32)])
            batch.commit_tokens(progress)
            batches.append(batch)
        kept, discarded = DeviceMapper.select_batches_to_keep(batches, capacity=2)
        assert [b.committed_tokens for b in kept] == [10, 7]
        assert [b.committed_tokens for b in discarded] == [3]

    def test_zero_capacity_discards_everything(self):
        batch = Batch([Request(arrival_time=0.0)])
        kept, discarded = DeviceMapper.select_batches_to_keep([batch], capacity=0)
        assert kept == []
        assert discarded == [batch]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            DeviceMapper.select_batches_to_keep([], capacity=-1)
