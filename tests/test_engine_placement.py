"""Tests for device-mesh placement math and context-overlap computation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.placement import (
    TopologyPosition,
    cache_context_overlap_bytes,
    mesh_positions,
    model_context_overlap_bytes,
    position_cache_bytes,
    position_model_bytes,
    shard_interval,
    stage_layer_range,
)
from repro.llm.spec import GPT_20B, OPT_6_7B


class TestTopology:
    def test_mesh_positions_count_and_uniqueness(self):
        positions = mesh_positions(2, 3, 4)
        assert len(positions) == 24
        assert len(set(positions)) == 24

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            TopologyPosition(-1, 0, 0)

    def test_invalid_mesh_rejected(self):
        with pytest.raises(ValueError):
            mesh_positions(0, 1, 1)

    def test_stage_layer_ranges_partition_the_model(self):
        total = 0.0
        for stage in range(3):
            start, end = stage_layer_range(44, 3, stage)
            total += end - start
        assert total == pytest.approx(44.0)

    def test_shard_intervals_partition_unit(self):
        total = sum(
            shard_interval(8, shard)[1] - shard_interval(8, shard)[0] for shard in range(8)
        )
        assert total == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            stage_layer_range(44, 3, 3)
        with pytest.raises(ValueError):
            shard_interval(4, 4)


class TestModelOverlap:
    def test_identical_position_full_reuse(self):
        position = TopologyPosition(0, 1, 2)
        overlap = model_context_overlap_bytes(GPT_20B, 2, 4, position, 2, 4, position)
        assert overlap == pytest.approx(position_model_bytes(GPT_20B, 2, 4))

    def test_disjoint_stages_zero_reuse(self):
        old = TopologyPosition(0, 0, 0)
        new = TopologyPosition(0, 1, 0)
        assert model_context_overlap_bytes(GPT_20B, 2, 1, old, 2, 1, new) == 0.0

    def test_disjoint_shards_zero_reuse(self):
        old = TopologyPosition(0, 0, 0)
        new = TopologyPosition(0, 0, 1)
        assert model_context_overlap_bytes(GPT_20B, 1, 2, old, 1, 2, new) == 0.0

    def test_data_parallel_index_is_irrelevant_for_model_context(self):
        old = TopologyPosition(0, 0, 0)
        new_same = TopologyPosition(0, 0, 0)
        new_other = TopologyPosition(1, 0, 0)
        a = model_context_overlap_bytes(GPT_20B, 2, 4, old, 2, 4, new_same)
        b = model_context_overlap_bytes(GPT_20B, 2, 4, old, 2, 4, new_other)
        assert a == pytest.approx(b)

    def test_paper_figure4b_example(self):
        """Figure 4b: u1 holds (stage 0, shard 1 of 2) under (P=2, M=2); it
        overlaps the most model context with the first-stage positions of the
        new (P=3, M=1) configuration."""
        u1_position = TopologyPosition(0, 0, 1)
        v_first_stage = TopologyPosition(0, 0, 0)
        v_last_stage = TopologyPosition(0, 2, 0)
        first = model_context_overlap_bytes(OPT_6_7B, 2, 2, u1_position, 3, 1, v_first_stage)
        last = model_context_overlap_bytes(OPT_6_7B, 2, 2, u1_position, 3, 1, v_last_stage)
        assert first > 0
        assert last == 0.0

    @given(
        old_p=st.sampled_from([1, 2, 4]),
        old_m=st.sampled_from([1, 2, 4, 8]),
        new_p=st.sampled_from([1, 2, 3, 4]),
        new_m=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_overlap_bounded_by_both_slices(self, old_p, old_m, new_p, new_m):
        old = TopologyPosition(0, old_p - 1, old_m - 1)
        new = TopologyPosition(0, new_p - 1, new_m - 1)
        overlap = model_context_overlap_bytes(GPT_20B, old_p, old_m, old, new_p, new_m, new)
        assert overlap <= position_model_bytes(GPT_20B, old_p, old_m) + 1.0
        assert overlap <= position_model_bytes(GPT_20B, new_p, new_m) + 1.0
        assert overlap >= 0

    @given(
        old_p=st.sampled_from([1, 2, 4]),
        new_p=st.sampled_from([1, 2, 3]),
        m=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=30, deadline=None)
    def test_total_overlap_over_new_mesh_equals_old_slice(self, old_p, new_p, m):
        """Summed over every new position, an old slice is fully accounted for
        (the new mesh covers the whole model)."""
        old = TopologyPosition(0, 0, 0)
        total = sum(
            model_context_overlap_bytes(GPT_20B, old_p, m, old, new_p, m, new)
            for new in mesh_positions(1, new_p, m)
        )
        assert total == pytest.approx(position_model_bytes(GPT_20B, old_p, m), rel=1e-6)


class TestCacheOverlap:
    def test_requires_inheritance(self):
        position = TopologyPosition(0, 0, 0)
        with_inherit = cache_context_overlap_bytes(
            GPT_20B, 100, 4, 2, 2, position, 2, 2, position, inherits_requests=True
        )
        without = cache_context_overlap_bytes(
            GPT_20B, 100, 4, 2, 2, position, 2, 2, position, inherits_requests=False
        )
        assert with_inherit > 0
        assert without == 0.0

    def test_zero_tokens_zero_cache(self):
        position = TopologyPosition(0, 0, 0)
        assert cache_context_overlap_bytes(GPT_20B, 0, 4, 2, 2, position, 2, 2, position) == 0.0

    def test_scales_with_tokens_and_batch(self):
        position = TopologyPosition(0, 0, 0)
        base = cache_context_overlap_bytes(GPT_20B, 100, 1, 2, 2, position, 2, 2, position)
        more_tokens = cache_context_overlap_bytes(GPT_20B, 200, 1, 2, 2, position, 2, 2, position)
        more_batch = cache_context_overlap_bytes(GPT_20B, 100, 4, 2, 2, position, 2, 2, position)
        assert more_tokens == pytest.approx(2 * base)
        assert more_batch == pytest.approx(4 * base)

    def test_position_cache_bytes_partition(self):
        total = GPT_20B.kv_cache_bytes(100, 4)
        per_position = position_cache_bytes(GPT_20B, 100, 4, 2, 8)
        assert per_position * 16 == pytest.approx(total)
        assert position_cache_bytes(GPT_20B, 0, 4, 2, 8) == 0.0
