"""Golden-digest equivalence for the simulate-phase fast path.

The PR-3 overhaul replaced three hot-path mechanisms -- pre-scheduled
arrival events became a streaming arrival source, list-based per-request
statistics became incremental aggregates, and the event core was rebuilt
around ``__slots__`` events with lazy heap compaction.  None of that may
move a single byte of the golden digests: this module runs the single-zone
and multi-zone golden scenarios through both arrival paths and both stats
retention modes and pins the resulting ``summary_text`` SHA-256 digests to
the values recorded *before* the overhaul (the same digests CHANGES.md has
carried since PR 2).
"""

import hashlib

from repro.core.server import SpotServeSystem
from repro.experiments.runner import run_serving_experiment
from repro.experiments.scenarios import (
    multi_zone_fluctuating_scenario,
    stable_workload_scenario,
)

#: Golden digests recorded on the pre-fast-path event core (PR 2).  These
#: exact values must survive every future perf PR; they are a function only
#: of the seeded numpy draws and IEEE-754 arithmetic, both of which are
#: platform-stable for the pinned scenarios.
SINGLE_ZONE_SHA256 = "13bd9e142347b849dcba2c5f52829a5ca9c7638ccb40c83512c45d80ce4d64b5"
MULTI_ZONE_SHA256 = "33c8a35b9b2764488dda4379defb50adea6283cafdcfed7618b22167ecc8502c"


def run_single_zone(stream_arrivals, retain_requests=True):
    scenario = stable_workload_scenario("OPT-6.7B", "AS", duration=400.0)
    options = scenario.options()
    options.retain_completed_requests = retain_requests
    return run_serving_experiment(
        SpotServeSystem,
        scenario.model_name,
        scenario.trace,
        scenario.arrival_process(),
        duration=scenario.duration,
        drain_time=200.0,
        options=options,
        stream_arrivals=stream_arrivals,
    )


def run_multi_zone(stream_arrivals, retain_requests=True):
    scenario, arrivals = multi_zone_fluctuating_scenario("OPT-6.7B", duration=600.0)
    options = scenario.options()
    options.retain_completed_requests = retain_requests
    return run_serving_experiment(
        SpotServeSystem,
        scenario.model_name,
        trace=None,
        arrival_process=arrivals,
        duration=scenario.duration,
        drain_time=300.0,
        options=options,
        zones=scenario.zones,
        allow_spot_requests=True,
        stream_arrivals=stream_arrivals,
    )


def digest(result) -> str:
    return hashlib.sha256(result.stats.summary_text().encode()).hexdigest()


class TestStreamingArrivalEquivalence:
    def test_single_zone_streaming_matches_prescheduled(self):
        streamed = run_single_zone(stream_arrivals=True)
        prescheduled = run_single_zone(stream_arrivals=False)
        assert streamed.stats.summary_text() == prescheduled.stats.summary_text()
        assert streamed.submitted_requests == prescheduled.submitted_requests
        assert streamed.total_cost == prescheduled.total_cost

    def test_multi_zone_streaming_matches_prescheduled(self):
        streamed = run_multi_zone(stream_arrivals=True)
        prescheduled = run_multi_zone(stream_arrivals=False)
        assert streamed.stats.summary_text() == prescheduled.stats.summary_text()
        assert streamed.submitted_requests == prescheduled.submitted_requests
        assert streamed.cost_by_zone == prescheduled.cost_by_zone


class TestIncrementalStatsEquivalence:
    def test_single_zone_unretained_stats_match(self):
        retained = run_single_zone(stream_arrivals=True, retain_requests=True)
        unretained = run_single_zone(stream_arrivals=True, retain_requests=False)
        assert retained.stats.summary_text() == unretained.stats.summary_text()
        assert unretained.stats.completed_requests == []
        assert unretained.stats.completed_count == retained.stats.completed_count
        assert unretained.latency.mean == retained.latency.mean
        assert unretained.latency.p99 == retained.latency.p99

    def test_multi_zone_unretained_stats_match(self):
        retained = run_multi_zone(stream_arrivals=True, retain_requests=True)
        unretained = run_multi_zone(stream_arrivals=True, retain_requests=False)
        assert retained.stats.summary_text() == unretained.stats.summary_text()
        assert unretained.stats.completed_requests == []


class TestPinnedGoldenDigests:
    """Byte-identity across the whole PR, not just within one test run."""

    def test_single_zone_digest_is_pinned(self):
        assert digest(run_single_zone(stream_arrivals=True)) == SINGLE_ZONE_SHA256

    def test_multi_zone_digest_is_pinned(self):
        assert digest(run_multi_zone(stream_arrivals=True)) == MULTI_ZONE_SHA256


class TestExactTimestampTies:
    """Streamed arrivals must win/lose same-time tie-breaks exactly like
    pre-scheduled ones (regression: a workload check falling on an integer
    FixedArrivals timestamp used to dispatch first in streaming mode)."""

    @staticmethod
    def dispatch_sequence(stream):
        from repro.cloud.provider import CloudProvider
        from repro.cloud.trace import AvailabilityTrace
        from repro.llm.spec import get_model
        from repro.sim.engine import Simulator
        from repro.sim.events import EventType
        from repro.workload.arrival import FixedArrivals

        trace = AvailabilityTrace(
            name="tie", initial_instances=6, events=[], duration=400.0
        )
        simulator = Simulator()
        provider = CloudProvider(simulator, trace)
        system = SpotServeSystem(
            simulator, provider, get_model("GPT-20B"), initial_arrival_rate=0.05
        )
        seen = []
        simulator.on(EventType.REQUEST_ARRIVAL, lambda e: seen.append(("arrival", e.time)))
        simulator.on(EventType.WORKLOAD_CHECK, lambda e: seen.append(("check", e.time)))
        # The arrival at t=120 ties the workload check at t=120, and the
        # check event is scheduled (at t=90) *before* the streaming source
        # arms the arrival (at t=100) -- the order-sensitive case: without
        # the reserved tie-break slot the check would dispatch first.
        process = FixedArrivals([100.0, 120.0, 200.0])
        if stream:
            system.submit_arrival_process(process, trace.duration)
        else:
            system.submit_requests(process.generate(trace.duration))
        system.initialize()
        stats = system.run(until=trace.duration + 400.0)
        return seen, stats.summary_text()

    def test_tied_timestamps_dispatch_in_identical_order(self):
        streamed_seq, streamed_digest = self.dispatch_sequence(stream=True)
        eager_seq, eager_digest = self.dispatch_sequence(stream=False)
        assert streamed_seq == eager_seq
        assert streamed_digest == eager_digest
        # Sanity: the scenario really does contain exact ties.
        times = [t for _, t in streamed_seq]
        assert len(times) != len(set(times))
