"""Tests for the Kuhn-Munkres matching substrate (cross-checked against scipy)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.matching.bipartite import BipartiteGraph
from repro.matching.hungarian import (
    assignment_weight,
    greedy_assignment,
    maximum_weight_assignment,
    minimum_cost_assignment,
)


def scipy_min_cost(matrix):
    rows, cols = linear_sum_assignment(matrix)
    return float(np.asarray(matrix)[rows, cols].sum())


def scipy_max_weight(matrix):
    rows, cols = linear_sum_assignment(-np.asarray(matrix))
    return float(np.asarray(matrix)[rows, cols].sum())


class TestHungarian:
    def test_simple_known_case(self):
        cost = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        pairs = minimum_cost_assignment(cost)
        total = sum(cost[r][c] for r, c in pairs)
        assert total == scipy_min_cost(cost)

    def test_rectangular_more_rows(self):
        weights = [[5, 1], [4, 8], [7, 6]]
        pairs = maximum_weight_assignment(weights)
        assert len(pairs) == 2
        assert assignment_weight(weights, pairs) == scipy_max_weight(weights)

    def test_rectangular_more_columns(self):
        weights = [[5, 1, 9, 2], [4, 8, 1, 3]]
        pairs = maximum_weight_assignment(weights)
        assert len(pairs) == 2
        assert assignment_weight(weights, pairs) == scipy_max_weight(weights)

    def test_empty_matrix(self):
        assert minimum_cost_assignment(np.zeros((0, 0))) == []
        assert maximum_weight_assignment(np.zeros((0, 3))) == []

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            minimum_cost_assignment([[1.0, float("inf")]])

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            maximum_weight_assignment([1.0, 2.0])

    def test_assignment_is_a_matching(self):
        rng = np.random.default_rng(0)
        weights = rng.random((6, 6))
        pairs = maximum_weight_assignment(weights)
        rows = [r for r, _ in pairs]
        cols = [c for _, c in pairs]
        assert len(set(rows)) == len(rows)
        assert len(set(cols)) == len(cols)

    @given(
        rows=st.integers(min_value=1, max_value=7),
        cols=st.integers(min_value=1, max_value=7),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_on_random_instances(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.random((rows, cols)) * rng.integers(1, 50)
        mine_min = sum(matrix[r, c] for r, c in minimum_cost_assignment(matrix))
        assert mine_min == pytest.approx(scipy_min_cost(matrix), abs=1e-8)
        mine_max = assignment_weight(matrix, maximum_weight_assignment(matrix))
        assert mine_max == pytest.approx(scipy_max_weight(matrix), abs=1e-8)

    @given(
        rows=st.integers(min_value=1, max_value=6),
        cols=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_greedy_never_beats_optimal(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.random((rows, cols))
        optimal = assignment_weight(matrix, maximum_weight_assignment(matrix))
        greedy = assignment_weight(matrix, greedy_assignment(matrix))
        assert greedy <= optimal + 1e-9

    def test_greedy_suboptimal_example(self):
        """A classic instance where the greedy heuristic loses to KM."""
        weights = [[10, 9], [9, 1]]
        greedy = assignment_weight(weights, greedy_assignment(weights))
        optimal = assignment_weight(weights, maximum_weight_assignment(weights))
        assert optimal == 18
        assert greedy == 11
        assert greedy < optimal


class TestBipartiteGraph:
    def test_weights_default_to_zero(self):
        graph = BipartiteGraph()
        graph.add_left("u0")
        graph.add_right("v0")
        assert graph.weight("u0", "v0") == 0.0

    def test_negative_weight_rejected(self):
        graph = BipartiteGraph()
        with pytest.raises(ValueError):
            graph.set_weight("u0", "v0", -1.0)

    def test_matrix_layout(self):
        graph = BipartiteGraph()
        graph.set_weight("u0", "v0", 3.0)
        graph.set_weight("u1", "v1", 5.0)
        matrix = graph.weight_matrix()
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] == 3.0
        assert matrix[1, 1] == 5.0

    def test_maximum_matching_prefers_heavy_edges(self):
        graph = BipartiteGraph()
        graph.set_weight("u0", "v0", 10.0)
        graph.set_weight("u0", "v1", 1.0)
        graph.set_weight("u1", "v0", 9.0)
        graph.set_weight("u1", "v1", 8.0)
        matching = graph.maximum_weight_matching()
        assert matching["u0"] == "v0"
        assert matching["u1"] == "v1"
        assert graph.matching_weight(matching) == 18.0

    def test_empty_graph_matches_nothing(self):
        assert BipartiteGraph().maximum_weight_matching() == {}
        assert BipartiteGraph().greedy_matching() == {}

    def test_num_edges(self):
        graph = BipartiteGraph()
        graph.set_weight("u0", "v0", 1.0)
        graph.set_weight("u0", "v1", 1.0)
        assert graph.num_edges == 2
