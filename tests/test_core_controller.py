"""Tests for the adaptive configuration optimizer (Algorithm 1)."""

import pytest

from repro.core.config import ConfigurationSpace, ParallelConfig
from repro.core.controller import ParallelizationController
from repro.llm.costmodel import LatencyModel
from repro.llm.memory import MemoryModel
from repro.llm.profiler import OfflineProfiler
from repro.llm.spec import GPT_20B, OPT_6_7B, get_model


def make_controller(model=GPT_20B, slo=None):
    latency_model = LatencyModel(model)
    memory_model = MemoryModel(model)
    space = ConfigurationSpace(model, memory_model)
    profiler = OfflineProfiler(latency_model, memory_model)
    return ParallelizationController(space, profiler, slo_latency=slo)


class TestEstimates:
    def test_estimate_fields_consistent(self):
        controller = make_controller()
        config = ParallelConfig(2, 3, 4, 8)
        estimate = controller.estimate(config, arrival_rate=0.35)
        assert estimate.config is config
        assert estimate.execution_latency > 0
        assert estimate.request_latency >= estimate.execution_latency
        assert estimate.num_instances == 6

    def test_overloaded_config_gets_infinite_latency(self):
        controller = make_controller()
        # One small pipeline cannot sustain 1 request/s for GPT-20B.
        estimate = controller.estimate(ParallelConfig(1, 3, 4, 1), arrival_rate=1.0)
        assert estimate.request_latency == float("inf")
        assert not estimate.meets_rate

    def test_zero_rate_gives_pure_execution_latency(self):
        controller = make_controller()
        config = ParallelConfig(1, 3, 4, 1)
        estimate = controller.estimate(config, arrival_rate=0.0)
        assert estimate.request_latency == pytest.approx(estimate.execution_latency)


class TestAlgorithm1:
    def test_latency_objective_when_rate_sustainable(self):
        controller = make_controller()
        decision = controller.propose(available_instances=12, arrival_rate=0.35)
        assert decision is not None
        assert decision.objective == "latency"
        assert decision.estimate.throughput >= 0.35
        assert decision.config.num_instances(4) <= 12

    def test_throughput_objective_when_rate_unreachable(self):
        controller = make_controller()
        # 3 instances (12 GPUs) cannot sustain 2 req/s of GPT-20B.
        decision = controller.propose(available_instances=3, arrival_rate=2.0)
        assert decision is not None
        assert decision.objective == "throughput"
        best = max(
            controller.estimate(c, 2.0).throughput
            for c in controller.config_space.feasible_configs(3)
        )
        assert decision.estimate.throughput == pytest.approx(best, rel=0.06)

    def test_no_feasible_configuration_returns_none(self):
        controller = make_controller()
        assert controller.propose(available_instances=0, arrival_rate=0.35) is None
        # GPT-20B does not fit on a single 4-GPU instance.
        assert controller.propose(available_instances=1, arrival_rate=0.35) is None

    def test_needs_allocation_when_demand_exceeds_fleet(self):
        controller = make_controller()
        decision = controller.propose(
            available_instances=3, arrival_rate=1.0, max_instances=10
        )
        assert decision is not None
        if decision.config.num_instances(4) > 3:
            assert decision.needs_allocation
            assert decision.instance_delta > 0

    def test_can_release_when_overprovisioned(self):
        controller = make_controller(OPT_6_7B)
        decision = controller.propose(available_instances=12, arrival_rate=0.05)
        assert decision is not None
        assert decision.config.num_instances(4) <= 12
        if decision.config.num_instances(4) < 12:
            assert decision.can_release

    def test_tie_break_prefers_fewer_instances(self):
        controller = make_controller()
        decision = controller.propose(available_instances=12, arrival_rate=0.35)
        assert decision is not None
        # Every sustaining configuration within the tie margin of the winner
        # must use at least as many instances.
        estimates = [
            controller.estimate(c, 0.35)
            for c in controller.config_space.feasible_configs(12)
        ]
        sustaining = [e for e in estimates if e.throughput >= 0.35 and e.meets_rate]
        threshold = decision.estimate.request_latency * (1 + controller.latency_tie_margin)
        near_ties = [e for e in sustaining if e.request_latency <= threshold]
        assert decision.estimate.num_instances <= min(e.num_instances for e in near_ties)

    def test_higher_rate_needs_at_least_as_much_throughput(self):
        controller = make_controller()
        low = controller.propose(available_instances=12, arrival_rate=0.2)
        high = controller.propose(available_instances=12, arrival_rate=0.6)
        assert low is not None and high is not None
        assert high.estimate.throughput >= 0.6
        assert low.estimate.throughput >= 0.2

    def test_slo_constrains_choice(self):
        lenient = make_controller()
        strict = make_controller(slo=20.0)
        base = lenient.propose(available_instances=12, arrival_rate=0.35)
        constrained = strict.propose(available_instances=12, arrival_rate=0.35)
        assert base is not None and constrained is not None
        if constrained.objective == "latency":
            assert constrained.estimate.request_latency <= 20.0

    def test_decision_records_inputs(self):
        controller = make_controller()
        decision = controller.propose(available_instances=6, arrival_rate=0.35)
        assert decision is not None
        assert decision.available_instances == 6
        assert decision.arrival_rate == pytest.approx(0.35)
