"""Tests for the LLM model catalog and geometry-derived sizes."""

import pytest
from hypothesis import given, strategies as st

from repro.llm.spec import (
    GPT_20B,
    LLAMA_30B,
    MODEL_CATALOG,
    OPT_6_7B,
    ModelSpec,
    get_model,
    register_model,
)

GB = 1024 ** 3

#: Parameter sizes reported in Table 1 of the paper (GB).
TABLE1_SIZES_GB = {"OPT-6.7B": 25.0, "GPT-20B": 74.5, "LLaMA-30B": 111.8}


class TestCatalog:
    def test_catalog_contains_paper_models(self):
        assert set(TABLE1_SIZES_GB) <= set(MODEL_CATALOG)

    def test_get_model_case_insensitive(self):
        assert get_model("gpt-20b") is GPT_20B

    def test_get_model_unknown_raises(self):
        with pytest.raises(KeyError):
            get_model("GPT-9000B")

    def test_register_model(self):
        spec = ModelSpec(name="Tiny-1B", num_layers=16, hidden_size=2048, num_heads=16)
        register_model(spec, overwrite=True)
        assert get_model("Tiny-1B") is spec

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_model(OPT_6_7B)

    @pytest.mark.parametrize("name,size_gb", sorted(TABLE1_SIZES_GB.items()))
    def test_parameter_sizes_match_table1(self, name, size_gb):
        """Derived parameter bytes should land within ~12% of Table 1."""
        spec = get_model(name)
        derived_gb = spec.total_param_bytes / GB
        assert derived_gb == pytest.approx(size_gb, rel=0.12)


class TestGeometry:
    def test_head_dim(self):
        assert OPT_6_7B.head_dim == OPT_6_7B.hidden_size // OPT_6_7B.num_heads

    def test_invalid_heads_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec(name="bad", num_layers=2, hidden_size=100, num_heads=3)

    def test_invalid_layers_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec(name="bad", num_layers=0, hidden_size=128, num_heads=2)

    def test_layer_params_scale_with_hidden_size(self):
        small = ModelSpec(name="s", num_layers=4, hidden_size=1024, num_heads=8)
        large = ModelSpec(name="l", num_layers=4, hidden_size=2048, num_heads=8)
        assert large.params_per_layer > 3 * small.params_per_layer

    def test_total_params_include_embeddings(self):
        spec = OPT_6_7B
        assert spec.total_params == spec.num_layers * spec.params_per_layer + spec.embedding_params


class TestKVCache:
    def test_kv_cache_linear_in_tokens(self):
        one = GPT_20B.kv_cache_bytes(1)
        many = GPT_20B.kv_cache_bytes(128)
        assert many == pytest.approx(128 * one)

    def test_kv_cache_linear_in_batch(self):
        single = GPT_20B.kv_cache_bytes(64, batch_size=1)
        batched = GPT_20B.kv_cache_bytes(64, batch_size=8)
        assert batched == pytest.approx(8 * single)

    def test_kv_cache_per_token_matches_formula(self):
        spec = OPT_6_7B
        expected = 2 * spec.num_layers * spec.hidden_size * spec.bytes_per_cache_element
        assert spec.kv_cache_bytes_per_token() == pytest.approx(expected)

    def test_llama_13b_scale_sanity(self):
        """The paper quotes ~1.7 GB per sequence for LLaMA-13B; our 30B model
        with S_in+S_out ~ 640 tokens should be on the same order (a few GB)."""
        per_seq = LLAMA_30B.kv_cache_bytes(640, batch_size=1) / GB
        assert 0.5 < per_seq < 4.0

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            OPT_6_7B.kv_cache_bytes_per_token(batch_size=0)

    def test_negative_sequence_rejected(self):
        with pytest.raises(ValueError):
            OPT_6_7B.kv_cache_bytes(-1)


class TestFlops:
    def test_flops_grow_with_context(self):
        assert GPT_20B.flops_per_token(2048) > GPT_20B.flops_per_token(1)

    def test_flops_dominated_by_matmul_term(self):
        spec = GPT_20B
        flops = spec.flops_per_token(512)
        assert flops == pytest.approx(2.0 * spec.num_layers * spec.params_per_layer, rel=0.25)

    def test_prefill_flops_superlinear_free(self):
        assert OPT_6_7B.prefill_flops(128) > 128 * OPT_6_7B.flops_per_token(1) * 0.99

    @given(st.integers(min_value=1, max_value=4096))
    def test_flops_positive(self, context):
        assert OPT_6_7B.flops_per_token(context) > 0
