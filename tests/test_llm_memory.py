"""Tests for the per-GPU memory model (Table 1's min-GPU column)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.llm.hardware import A100_40GB, T4
from repro.llm.memory import MemoryModel
from repro.llm.spec import GPT_20B, LLAMA_30B, OPT_6_7B, get_model

#: Table 1: minimum GPU counts on 16 GB T4s (4 GPUs per instance).
TABLE1_MIN_GPUS = {"OPT-6.7B": 4, "GPT-20B": 12, "LLaMA-30B": 16}


class TestTable1MinGpus:
    @pytest.mark.parametrize("name,expected", sorted(TABLE1_MIN_GPUS.items()))
    def test_min_gpus_matches_table1(self, name, expected):
        model = MemoryModel(get_model(name), T4)
        assert model.min_gpus(batch_size=8) == expected

    @pytest.mark.parametrize("name", sorted(TABLE1_MIN_GPUS))
    def test_paper_reference_layout_fits(self, name):
        """The (P, M) layouts listed in Table 1 must be memory-feasible."""
        reference = {"OPT-6.7B": (1, 4), "GPT-20B": (3, 4), "LLaMA-30B": (2, 8)}
        p, m = reference[name]
        model = MemoryModel(get_model(name), T4)
        assert model.fits(p, m, batch_size=8)

    def test_a100_needs_fewer_gpus(self):
        t4 = MemoryModel(GPT_20B, T4).min_gpus(batch_size=8)
        a100 = MemoryModel(GPT_20B, A100_40GB).min_gpus(batch_size=8)
        assert a100 < t4


class TestFootprintComponents:
    def test_param_bytes_shrink_with_parallelism(self):
        model = MemoryModel(GPT_20B)
        assert model.param_bytes_per_gpu(2, 4) < model.param_bytes_per_gpu(1, 4)
        assert model.param_bytes_per_gpu(2, 4) == pytest.approx(
            GPT_20B.total_param_bytes / 8
        )

    def test_kv_cache_bytes_scale_with_batch(self):
        model = MemoryModel(GPT_20B)
        assert model.kv_cache_bytes_per_gpu(2, 4, 8) == pytest.approx(
            8 * model.kv_cache_bytes_per_gpu(2, 4, 1)
        )

    def test_migration_buffer_counts_against_capacity(self):
        model = MemoryModel(GPT_20B)
        without = model.per_gpu_bytes(3, 4, 8)
        with_buffer = model.per_gpu_bytes(3, 4, 8, migration_buffer_bytes=2 * 1024 ** 3)
        assert with_buffer == pytest.approx(without + 2 * 1024 ** 3)

    def test_headroom_sign_matches_fits(self):
        model = MemoryModel(LLAMA_30B)
        assert (model.headroom_bytes(2, 8, 8) >= 0) == model.fits(2, 8, 8)
        assert (model.headroom_bytes(1, 4, 8) >= 0) == model.fits(1, 4, 8)

    def test_invalid_degrees_rejected(self):
        model = MemoryModel(OPT_6_7B)
        with pytest.raises(ValueError):
            model.param_bytes_per_gpu(0, 4)
        with pytest.raises(ValueError):
            model.kv_cache_bytes_per_gpu(1, 1, 0)

    def test_best_layout_respects_geometry(self):
        model = MemoryModel(GPT_20B)
        layout = model.best_layout(12, batch_size=8)
        assert layout is not None
        p, m = layout
        assert p * m == 12
        assert GPT_20B.num_heads % m == 0

    def test_best_layout_none_when_too_small(self):
        assert MemoryModel(LLAMA_30B).best_layout(4, batch_size=8) is None


class TestMemoryMonotonicity:
    @given(
        p=st.integers(min_value=1, max_value=8),
        m=st.sampled_from([1, 2, 4, 8]),
        batch=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_more_tensor_parallelism_never_increases_footprint(self, p, m, batch):
        model = MemoryModel(GPT_20B)
        assert model.per_gpu_bytes(p, 2 * m, batch) < model.per_gpu_bytes(p, m, batch)

    @given(
        p=st.integers(min_value=1, max_value=8),
        m=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_larger_batch_never_decreases_footprint(self, p, m):
        model = MemoryModel(GPT_20B)
        assert model.per_gpu_bytes(p, m, 8) >= model.per_gpu_bytes(p, m, 1)

    def test_min_gpus_respects_instance_granularity(self):
        model = MemoryModel(GPT_20B)
        assert model.min_gpus(batch_size=8, gpus_per_instance=4) % 4 == 0
        assert model.min_gpus(batch_size=8, gpus_per_instance=1) <= model.min_gpus(
            batch_size=8, gpus_per_instance=4
        )
