"""Tests for the experiment harness: metrics, runner, scenarios, ablations."""

import math

import pytest

from repro.baselines.rerouting import RequestReroutingSystem
from repro.core.server import SpotServeOptions, SpotServeSystem
from repro.cloud.trace import AvailabilityTrace, TraceEvent, TraceEventKind, get_trace
from repro.experiments.ablation import ABLATION_ORDER, ablation_options
from repro.experiments.metrics import (
    REPORTED_PERCENTILES,
    LatencyStats,
    improvement_factor,
    summarize_latencies,
)
from repro.experiments.runner import run_comparison, run_serving_experiment
from repro.experiments.scenarios import (
    COMPARED_SYSTEMS,
    DEFAULT_WORKLOAD_SEEDS,
    STABLE_MODELS,
    STABLE_TRACES,
    fluctuating_workload_scenario,
    heavy_traffic_scenario,
    stable_workload_scenario,
)
from repro.workload.arrival import FixedArrivals, GammaArrivals


class TestLatencyStats:
    def test_basic_statistics(self):
        stats = LatencyStats.from_latencies([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.p99 <= stats.maximum
        assert stats.p90 <= stats.p99

    def test_reported_percentiles_match_paper_axis(self):
        assert REPORTED_PERCENTILES == (90, 95, 96, 97, 98, 99)
        stats = LatencyStats.from_latencies(range(1, 101))
        assert set(stats.percentiles) == set(REPORTED_PERCENTILES)

    def test_empty_input_gives_nans(self):
        stats = LatencyStats.from_latencies([])
        assert stats.count == 0
        assert math.isnan(stats.mean)
        assert math.isnan(stats.p99)

    def test_as_row(self):
        row = LatencyStats.from_latencies([1.0, 2.0]).as_row()
        assert row["count"] == 2
        assert "p99" in row and "avg" in row

    def test_improvement_factor(self):
        assert improvement_factor(10.0, 5.0) == pytest.approx(2.0)
        assert improvement_factor(10.0, 0.0) == float("inf")

    def test_summarize_latencies(self):
        summary = summarize_latencies({"a": [1.0, 2.0], "b": [4.0]})
        assert summary["a"].count == 2
        assert summary["b"].mean == 4.0


def tiny_trace():
    return AvailabilityTrace(
        name="tiny",
        initial_instances=6,
        events=[TraceEvent(150.0, TraceEventKind.PREEMPT, 1)],
        duration=400.0,
    )


class TestRunner:
    def test_experiment_result_fields(self):
        result = run_serving_experiment(
            SpotServeSystem,
            "GPT-20B",
            tiny_trace(),
            FixedArrivals([50.0, 120.0, 200.0]),
            drain_time=400.0,
        )
        assert result.system_name == "SpotServe"
        assert result.model_name == "GPT-20B"
        assert result.trace_name == "tiny"
        assert result.submitted_requests == 3
        assert result.completed_requests == 3
        assert result.completion_ratio == pytest.approx(1.0)
        assert result.total_cost > 0
        assert result.tokens_generated >= 3 * 128
        assert result.cost_per_token > 0
        assert "p99_latency" in result.summary()

    def test_runner_is_deterministic(self):
        def run_once():
            return run_serving_experiment(
                SpotServeSystem,
                "GPT-20B",
                tiny_trace(),
                GammaArrivals(rate=0.25, cv=2.0, seed=5),
                drain_time=400.0,
            )

        a, b = run_once(), run_once()
        assert a.latency.mean == pytest.approx(b.latency.mean)
        assert a.total_cost == pytest.approx(b.total_cost)

    def test_comparison_replays_identical_workload(self):
        results = run_comparison(
            {"SpotServe": SpotServeSystem, "Rerouting": RequestReroutingSystem},
            "GPT-20B",
            tiny_trace(),
            GammaArrivals(rate=0.25, cv=2.0, seed=5),
            drain_time=400.0,
        )
        assert set(results) == {"SpotServe", "Rerouting"}
        assert (
            results["SpotServe"].submitted_requests
            == results["Rerouting"].submitted_requests
        )

    def test_parallel_comparison_matches_serial(self):
        # The multiprocessing sweep regenerates the workload from the
        # seeded process inside each worker; results must be identical to
        # the serial template-replay path, digest for digest.
        systems = {"SpotServe": SpotServeSystem, "Rerouting": RequestReroutingSystem}
        arrivals = GammaArrivals(rate=0.25, cv=2.0, seed=5)
        serial = run_comparison(
            systems, "GPT-20B", tiny_trace(), arrivals, drain_time=400.0
        )
        parallel = run_comparison(
            systems, "GPT-20B", tiny_trace(), arrivals, drain_time=400.0, workers=2
        )
        assert set(parallel) == set(serial)
        for name in systems:
            assert (
                parallel[name].stats.summary_text() == serial[name].stats.summary_text()
            )
            assert parallel[name].submitted_requests == serial[name].submitted_requests
            assert parallel[name].total_cost == serial[name].total_cost


class TestScenarios:
    def test_stable_scenarios_cover_the_figure6_grid(self):
        assert set(STABLE_MODELS) == {"OPT-6.7B", "GPT-20B", "LLaMA-30B"}
        assert set(STABLE_TRACES) == {"AS", "BS"}
        assert set(COMPARED_SYSTEMS) == {"SpotServe", "Reparallelization", "Rerouting"}

    def test_scenario_uses_paper_rates_and_seeds(self):
        scenario = stable_workload_scenario("GPT-20B", "BS")
        assert scenario.arrival_rate == pytest.approx(0.35)
        assert scenario.trace.name == "BS"
        assert scenario.seed == DEFAULT_WORKLOAD_SEEDS["GPT-20B"]
        assert not scenario.allow_on_demand
        assert scenario.options().allow_on_demand is False

    def test_plus_o_variant_enables_on_demand(self):
        scenario = stable_workload_scenario("GPT-20B", "AS", allow_on_demand=True)
        assert scenario.options().allow_on_demand is True

    def test_scenario_duration_override(self):
        scenario = stable_workload_scenario("GPT-20B", "AS", duration=300.0)
        assert scenario.duration == 300.0
        assert all(event.time < 300.0 for event in scenario.trace.events)

    def test_fluctuating_scenario(self):
        scenario, process = fluctuating_workload_scenario()
        assert scenario.allow_on_demand
        rates = [process.rate_at(t) for t in (0.0, scenario.duration / 2, scenario.duration - 1)]
        assert max(rates) > min(rates)

    def test_heavy_traffic_scenario_shape(self):
        scenario, process = heavy_traffic_scenario(target_requests=100_000)
        assert scenario.max_instances > 14  # scaled-up market
        assert scenario.retain_completed_requests is False
        assert scenario.options().retain_completed_requests is False
        # Expected arrivals overshoot the target by the safety margin.
        expected = process.rate_at(0.0)  # profile exists and is positive
        assert expected > 0
        assert sum(zone.capacity for zone in scenario.zones) >= scenario.max_instances

    def test_heavy_traffic_realises_target_request_count(self):
        # Counting the streamed draws is cheap (no Request objects); the
        # rescale margin must put the realised count at or above the target.
        scenario, process = heavy_traffic_scenario(target_requests=20_000, duration=600.0)
        assert process.count_arrivals(600.0) >= 20_000

    def test_workload_realisation_matches_nominal_rate(self):
        """The representative seeds keep the realized request count within
        ~12% of rate * duration for every model."""
        for model in STABLE_MODELS:
            scenario = stable_workload_scenario(model, "AS")
            count = len(scenario.arrival_process().arrival_times(scenario.duration))
            nominal = scenario.arrival_rate * scenario.duration
            assert abs(count - nominal) / nominal < 0.12


class TestAblation:
    def test_ablation_presets_are_cumulative(self):
        presets = ablation_options()
        assert list(presets) == ABLATION_ORDER
        assert presets["SpotServe"].adaptive_controller
        assert not presets["- Controller"].adaptive_controller
        assert not presets["- Migration Planner"].memory_optimized_migration
        assert not presets["- Migration Planner"].adaptive_controller
        assert not presets["- Interruption Arranger"].stateful_recovery
        assert not presets["- Device Mapper"].optimal_device_mapping
        # Every later preset disables at least everything the previous one did.
        flags = [
            "adaptive_controller",
            "memory_optimized_migration",
            "progressive_migration",
            "stateful_recovery",
            "optimal_device_mapping",
        ]
        for earlier, later in zip(ABLATION_ORDER, ABLATION_ORDER[1:]):
            for flag in flags:
                if not getattr(presets[earlier], flag):
                    assert not getattr(presets[later], flag)

    def test_ablation_presets_respect_on_demand_flag(self):
        presets = ablation_options(allow_on_demand=True)
        assert all(options.allow_on_demand for options in presets.values())
