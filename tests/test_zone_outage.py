"""Zone-outage fault injection: provider semantics, evacuation, conservation.

The worst case the ROADMAP lists for the multi-zone market is a whole
availability zone going dark.  These tests pin the full chain:

* :class:`~repro.cloud.zone.OutageWindow` validation and scheduling,
* :class:`~repro.cloud.provider.CloudProvider` emitting the ``ZONE_OUTAGE``
  phases, reclaiming every instance in the zone atomically (spot, on-demand
  and still-launching alike) and holding the zone's capacity at zero for the
  window,
* the serving system's evacuation path (pipelines re-placed across the
  surviving zones, evacuation mode toggled on the mapper/planner),
* request conservation: **no request is silently lost** -- every submitted
  request is completed, still queued/in flight, or counted in the
  dropped/rerouted counters -- pinned by a golden sha256 digest of the
  extended stats summary on the canonical ``zone_outage_scenario``.
"""

import hashlib

import pytest

from repro.cloud.instance import InstanceState, Market
from repro.cloud.pricing import PriceSchedule
from repro.cloud.provider import CloudProvider
from repro.cloud.trace import AvailabilityTrace, TraceEvent, TraceEventKind
from repro.cloud.zone import OutageWindow, ZoneSpec
from repro.core.server import SpotServeSystem
from repro.experiments.runner import run_scenario_experiment
from repro.experiments.scenarios import zone_outage_scenario
from repro.llm.spec import get_model
from repro.sim.engine import Simulator
from repro.sim.events import EventType
from repro.workload.arrival import GammaArrivals

#: Golden digest of ``extended_summary_text()`` for the canonical
#: zone-outage scenario (duration 900 s, 30 s warning, drain 300 s).  The
#: extended summary includes the zone_outages / requests_rerouted /
#: requests_dropped counters, so this pins the conservation accounting, not
#: just the serving outcome.  Recorded when the outage subsystem landed;
#: re-recorded when the overload-control counters (requests_rejected /
#: requests_shed, both zero here) joined the extended summary, and again
#: when the fault-injection counters (allocation_refusals /
#: launch_failures / acquisition_retries / early_preemptions /
#: migration_fallbacks / allocation_shortfall, all zero here) joined, and
#: again when the tiered-offload counters (bytes_spilled / bytes_restored /
#: bytes_abandoned / restores / spill_fallbacks, all zero here -- no tier
#: is configured) joined -- the run itself is unchanged each time, which
#: the untouched legacy ``summary_text()`` golden digests prove.
ZONE_OUTAGE_SHA256 = "7b3a94a31add8ce2b081fe89d1c0a296569d27da21957c0b870de9f89c039550"


# ----------------------------------------------------------------------
# OutageWindow / ZoneSpec validation
# ----------------------------------------------------------------------
class TestOutageWindow:
    def test_basic_properties(self):
        window = OutageWindow(start=100.0, duration=50.0, warning=10.0)
        assert window.end == 150.0
        assert window.notice_time == 90.0
        assert window.covers(100.0)
        assert window.covers(149.9)
        assert not window.covers(99.9)
        assert not window.covers(150.0)

    def test_warning_clamped_to_time_zero(self):
        window = OutageWindow(start=5.0, duration=10.0, warning=30.0)
        assert window.notice_time == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OutageWindow(start=-1.0, duration=10.0)
        with pytest.raises(ValueError):
            OutageWindow(start=0.0, duration=0.0)
        with pytest.raises(ValueError):
            OutageWindow(start=0.0, duration=10.0, warning=-1.0)

    def test_zone_spec_rejects_overlapping_outages(self):
        trace = AvailabilityTrace(name="t", initial_instances=1, events=[], duration=500.0)
        with pytest.raises(ValueError, match="overlap"):
            ZoneSpec(
                name="z",
                trace=trace,
                outages=(
                    OutageWindow(start=100.0, duration=50.0),
                    OutageWindow(start=120.0, duration=50.0),
                ),
            )

    def test_zone_spec_sorts_outages_and_outage_at(self):
        trace = AvailabilityTrace(name="t", initial_instances=1, events=[], duration=900.0)
        spec = ZoneSpec(
            name="z",
            trace=trace,
            outages=(
                OutageWindow(start=500.0, duration=50.0),
                OutageWindow(start=100.0, duration=50.0),
            ),
        )
        assert [window.start for window in spec.outages] == [100.0, 500.0]
        assert spec.outage_at(120.0) is spec.outages[0]
        assert spec.outage_at(520.0) is spec.outages[1]
        assert spec.outage_at(300.0) is None


# ----------------------------------------------------------------------
# Provider-level semantics
# ----------------------------------------------------------------------
def outage_zones(warning: float, duration: float = 600.0, trace_events=()):
    hit = ZoneSpec(
        name="zone-a",
        trace=AvailabilityTrace(
            name="a", initial_instances=3, events=list(trace_events), duration=duration
        ),
        capacity=6,
        spot_pricing=PriceSchedule.flat(1.5),
        outages=(OutageWindow(start=200.0, duration=200.0, warning=warning),),
    )
    calm = ZoneSpec(
        name="zone-b",
        trace=AvailabilityTrace(name="b", initial_instances=2, events=[], duration=duration),
        capacity=6,
        spot_pricing=PriceSchedule.flat(1.9),
    )
    return (hit, calm)


class TestProviderOutage:
    def record_events(self, simulator, event_type):
        seen = []
        simulator.on(event_type, lambda e: seen.append(e))
        return seen

    def test_unannounced_outage_kills_every_instance_atomically(self):
        simulator = Simulator()
        provider = CloudProvider(simulator, zones=outage_zones(warning=0.0))
        outage_events = self.record_events(simulator, EventType.ZONE_OUTAGE)
        notices = self.record_events(simulator, EventType.PREEMPTION_NOTICE)

        simulator.run(until=199.9)
        assert provider.alive_in_zone("zone-a") == 3
        simulator.run(until=200.1)
        assert provider.alive_in_zone("zone-a") == 0
        assert provider.alive_in_zone("zone-b") == 2
        # Unannounced: no spot grace, only the down + (later) restored phases.
        assert not notices
        phases = [e.payload["phase"] for e in outage_events]
        assert phases == ["down"]
        dead = provider.instances_in_zone("zone-a")
        assert all(inst.state is InstanceState.PREEMPTED for inst in dead)
        assert outage_events[0].payload["failed_instances"] == sorted(
            dead, key=lambda inst: inst.instance_id
        )
        assert provider.preempted_count == 3
        assert provider.zone_outage_count == 1

    def test_warning_issues_grace_notices_with_outage_deadline(self):
        simulator = Simulator()
        provider = CloudProvider(simulator, zones=outage_zones(warning=30.0))
        notices = self.record_events(simulator, EventType.PREEMPTION_NOTICE)
        outage_events = self.record_events(simulator, EventType.ZONE_OUTAGE)

        simulator.run(until=170.5)
        assert [e.payload["deadline"] for e in notices] == [200.0, 200.0, 200.0]
        assert all(e.payload["instance"].zone == "zone-a" for e in notices)
        assert [e.payload["phase"] for e in outage_events] == ["warning"]
        # The graced instances stay usable until the deadline...
        assert provider.alive_in_zone("zone-a") == 3
        simulator.run(until=200.5)
        # ...and are all gone at the outage start.
        assert provider.alive_in_zone("zone-a") == 0
        assert [e.payload["phase"] for e in outage_events] == ["warning", "down"]

    def test_capacity_is_zero_during_the_window(self):
        simulator = Simulator()
        provider = CloudProvider(
            simulator,
            zones=outage_zones(
                warning=0.0,
                trace_events=[TraceEvent(250.0, TraceEventKind.ACQUIRE, 2)],
            ),
            allow_spot_requests=True,
        )
        simulator.run(until=260.0)
        # The trace ACQUIRE inside the window granted nothing...
        assert provider.alive_in_zone("zone-a") == 0
        assert provider.capacity_remaining("zone-a") == 0
        assert provider.zone_is_down("zone-a")
        # ...and explicit allocation requests are refused too.
        assert provider.request_spot(1, zone="zone-a") == []
        assert provider.request_on_demand(1, zone="zone-a") == []
        simulator.run(until=401.0)
        assert not provider.zone_is_down("zone-a")
        assert provider.capacity_remaining("zone-a") == 6
        granted = provider.request_on_demand(1, zone="zone-a")
        assert len(granted) == 1

    def test_outage_takes_down_on_demand_and_launching_instances(self):
        simulator = Simulator()
        provider = CloudProvider(simulator, zones=outage_zones(warning=0.0))
        ready_events = self.record_events(simulator, EventType.ACQUISITION_READY)

        simulator.run(until=100.0)
        (on_demand,) = provider.request_on_demand(1, zone="zone-a")
        simulator.run(until=180.0)
        # Launched 20 s before the outage; startup delay is 40 s, so this
        # instance dies mid-launch and must never be announced as ready.
        (launching,) = provider.request_on_demand(1, zone="zone-a")
        simulator.run(until=300.0)
        assert on_demand.market is Market.ON_DEMAND
        assert not on_demand.is_alive
        assert not launching.is_alive
        assert launching.ready_time is None
        announced = {e.payload["instance"].instance_id for e in ready_events}
        assert launching.instance_id not in announced
        # Billing stopped at the outage for both.
        assert on_demand.termination_time == 200.0
        assert launching.termination_time == 200.0

    def test_trace_preempt_of_launching_instance_does_not_crash(self):
        # Regression (found while wiring the ready-event cancellation): a
        # trace PREEMPT that picks a still-launching spot instance used to
        # leave its ACQUISITION_READY event pending; it then fired after the
        # reclaim and mark_ready raised on the dead instance.
        launching_victim_seen = False
        for victim_seed in range(6):
            simulator = Simulator()
            zone = ZoneSpec(
                name="z",
                trace=AvailabilityTrace(
                    name="t",
                    initial_instances=1,
                    events=[TraceEvent(10.0, TraceEventKind.PREEMPT, 1)],
                    duration=200.0,
                ),
            )
            provider = CloudProvider(
                simulator,
                zones=[zone],
                allow_spot_requests=True,
                victim_seed=victim_seed,
            )
            ready_events = self.record_events(simulator, EventType.ACQUISITION_READY)
            simulator.run(until=5.0)
            (extra,) = provider.request_spot(1, zone="z")  # ready would be t=45
            simulator.run(until=100.0)  # PREEMPT at t=10 picks one of the two
            if not extra.is_alive:
                launching_victim_seen = True
                assert extra.ready_time is None
                announced = {e.payload["instance"].instance_id for e in ready_events}
                assert extra.instance_id not in announced
        assert launching_victim_seen, "no seed ever picked the launching victim"

    def test_avoid_zones_skips_doomed_zone_in_spread_allocations(self):
        simulator = Simulator()
        provider = CloudProvider(
            simulator, zones=outage_zones(warning=30.0), allow_spot_requests=True
        )
        simulator.run(until=175.0)  # warning fired; zone-a still sells capacity
        assert provider.capacity_remaining("zone-a") > 0
        granted = provider.request_spot(2, avoid_zones=("zone-a",))
        assert granted and all(inst.zone == "zone-b" for inst in granted)

    def test_next_outage_lookup(self):
        simulator = Simulator()
        provider = CloudProvider(simulator, zones=outage_zones(warning=0.0))
        window = provider.next_outage("zone-a")
        assert window is not None and window.start == 200.0
        assert provider.next_outage("zone-b") is None
        simulator.run(until=450.0)
        assert provider.next_outage("zone-a") is None


# ----------------------------------------------------------------------
# System-level evacuation
# ----------------------------------------------------------------------
class TestEvacuation:
    def build_system(self, warning=30.0):
        simulator = Simulator()
        provider = CloudProvider(simulator, zones=outage_zones(warning=warning))
        system = SpotServeSystem(
            simulator, provider, get_model("OPT-6.7B"), initial_arrival_rate=0.3
        )
        system.submit_arrival_process(GammaArrivals(rate=0.3, cv=2.0, seed=1), 500.0)
        system.initialize()
        return simulator, provider, system

    def test_fleet_evacuates_to_surviving_zone(self):
        simulator, provider, system = self.build_system()
        simulator.run(until=150.0)
        zones_in_use = {
            provider.zone_of(instance_id)
            for pipeline in system.pipelines
            for instance_id in pipeline.assignment.instance_ids
        }
        assert "zone-a" in zones_in_use  # the doomed zone is load-bearing
        simulator.run(until=300.0)
        assert system.pipelines, "serving must resume on the survivors"
        zones_after = {
            provider.zone_of(instance_id)
            for pipeline in system.pipelines
            for instance_id in pipeline.assignment.instance_ids
        }
        assert zones_after == {"zone-b"}

    def test_evacuation_mode_toggles_with_the_window(self):
        simulator, provider, system = self.build_system()
        assert not system.device_mapper.evacuation_mode
        simulator.run(until=171.0)  # warning fired at 170
        assert system.device_mapper.evacuation_mode
        assert system.migration_planner.evacuation_mode
        assert system._evacuating_zones == {"zone-a"}
        simulator.run(until=300.0)  # zone dark
        assert system.device_mapper.evacuation_mode
        simulator.run(until=401.0)  # restored at 400
        assert not system.device_mapper.evacuation_mode
        assert not system.migration_planner.evacuation_mode
        assert system._evacuating_zones == set()

    def test_unannounced_outage_reroutes_in_flight_requests(self):
        simulator, provider, system = self.build_system(warning=0.0)
        simulator.run(until=600.0)
        stats = system.stats
        assert stats.zone_outages == 1
        # The atomic kill tore down in-flight work; none of it was lost.
        assert stats.requests_dropped == 0
        assert (
            system.submitted_requests
            == stats.completed_count
            + system.unfinished_request_count()
            + stats.requests_dropped
        )

    def test_conservation_holds_at_every_probe_point(self):
        simulator, provider, system = self.build_system()
        for until in (150.0, 199.0, 201.0, 230.0, 300.0, 401.0, 600.0, 900.0):
            simulator.run(until=until)
            unfinished = system.unfinished_request_count()
            assert (
                system.submitted_requests
                == system.stats.completed_count + unfinished + system.stats.requests_dropped
            ), f"conservation violated at t={until}"


# ----------------------------------------------------------------------
# Golden conservation regression (the canonical scenario)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def golden_result():
    scenario, arrivals = zone_outage_scenario("OPT-6.7B")
    return run_scenario_experiment(scenario, arrivals, drain_time=300.0)


class TestAutoscalerAvoidsDoomedZone:
    def test_backfill_never_lands_in_a_zone_under_warning(self):
        # Regression: with a long warning, the workload checks between the
        # warning and the outage start used to buy replacement capacity in
        # the *dying* zone (it is the cheapest and its provider capacity
        # only reads zero inside the window), starving the evacuation's
        # back-fill.  Doomed zones must read as full to the autoscaler.
        scenario, arrivals = zone_outage_scenario("OPT-6.7B", warning=90.0)
        result = run_scenario_experiment(scenario, arrivals, drain_time=300.0)
        outage = scenario.zones[0].outages[0]
        for action in result.stats.autoscale_actions:
            if outage.notice_time <= action.time < outage.end:
                assert "us-east-1a" not in action.acquired, (
                    f"acquired in the doomed zone at t={action.time}: "
                    f"{action.acquired}"
                )
        # The back-fill itself still happened, in the surviving zones.
        backfill = [
            action
            for action in result.stats.autoscale_actions
            if outage.notice_time <= action.time < outage.end and action.acquired
        ]
        assert backfill, "the evacuation must trigger a back-fill"


class TestConservationGolden:
    def test_zero_lost_requests(self, golden_result):
        stats = golden_result.stats
        assert golden_result.submitted_requests > 1000
        assert stats.requests_dropped == 0
        assert golden_result.completed_requests == golden_result.submitted_requests
        assert stats.zone_outages == 1
        # The outage really disrupted serving (this is not a vacuous pass).
        assert stats.requests_rerouted > 0
        assert any(r.reason == "zone-outage" for r in stats.reconfigurations)

    def test_extended_digest_is_pinned(self, golden_result):
        text = golden_result.stats.extended_summary_text()
        assert "zone_outages=1" in text
        assert "requests_dropped=0" in text
        digest = hashlib.sha256(text.encode()).hexdigest()
        assert digest == ZONE_OUTAGE_SHA256

    def test_digest_is_deterministic_across_runs(self, golden_result):
        scenario, arrivals = zone_outage_scenario("OPT-6.7B")
        rerun = run_scenario_experiment(scenario, arrivals, drain_time=300.0)
        assert (
            rerun.stats.extended_summary_text()
            == golden_result.stats.extended_summary_text()
        )
        assert rerun.cost_by_zone == golden_result.cost_by_zone

    def test_new_counters_stay_out_of_the_legacy_summary(self, golden_result):
        # The pre-outage golden digests pin summary_text() byte-for-byte, so
        # the new counters must only appear in the extended summary.
        legacy = golden_result.stats.summary_text()
        assert "zone_outages" not in legacy
        assert "requests_rerouted" not in legacy
        assert "requests_dropped" not in legacy
        extended = golden_result.stats.extended_summary_text()
        assert set(legacy.split("\n")) <= set(extended.split("\n"))
        assert "zone_outages=" in extended
