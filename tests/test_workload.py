"""Tests for requests, arrival processes and the MAF-like workload."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.arrival import (
    DEFAULT_ARRIVAL_RATES,
    FixedArrivals,
    GammaArrivals,
    PoissonArrivals,
    TimeVaryingArrivals,
    default_rate_for,
)
from repro.workload.maf import synthesize_maf_profile
from repro.workload.request import Request, RequestState


class TestRequest:
    def test_commit_and_remaining(self):
        request = Request(arrival_time=0.0, output_tokens=10)
        request.commit_tokens(4)
        assert request.committed_tokens == 4
        assert request.remaining_tokens == 6
        request.commit_tokens(100)
        assert request.committed_tokens == 10
        assert request.is_complete

    def test_drop_cache_resets_progress(self):
        request = Request(arrival_time=0.0, output_tokens=10)
        request.commit_tokens(7)
        request.drop_cache()
        assert request.committed_tokens == 0
        assert request.recomputed_tokens == 7
        assert not request.cache_preserved

    def test_latency_and_scheduling_delay(self):
        request = Request(arrival_time=5.0)
        assert request.latency() is None
        request.mark_started(8.0)
        request.mark_completed(20.0)
        assert request.scheduling_delay() == pytest.approx(3.0)
        assert request.latency() == pytest.approx(15.0)
        assert request.state is RequestState.COMPLETED

    def test_interruption_counter(self):
        request = Request(arrival_time=0.0)
        request.mark_interrupted()
        request.mark_interrupted()
        assert request.interruptions == 2
        assert request.state is RequestState.INTERRUPTED

    def test_invalid_requests_rejected(self):
        with pytest.raises(ValueError):
            Request(arrival_time=-1.0)
        with pytest.raises(ValueError):
            Request(arrival_time=0.0, input_tokens=0)
        with pytest.raises(ValueError):
            Request(arrival_time=0.0).commit_tokens(-1)

    def test_unique_ids(self):
        assert Request(arrival_time=0.0).request_id != Request(arrival_time=0.0).request_id


class TestArrivalProcesses:
    def test_poisson_rate_is_respected(self):
        times = PoissonArrivals(rate=2.0, seed=1).arrival_times(5000.0)
        assert len(times) == pytest.approx(10000, rel=0.05)
        assert all(0 <= t < 5000.0 for t in times)
        assert times == sorted(times)

    def test_gamma_rate_is_respected_on_long_horizon(self):
        times = GammaArrivals(rate=1.0, cv=6.0, seed=3).arrival_times(50_000.0)
        assert len(times) == pytest.approx(50_000, rel=0.1)

    def test_gamma_cv_controls_burstiness(self):
        smooth = np.diff(GammaArrivals(rate=1.0, cv=1.0, seed=0).arrival_times(20_000.0))
        bursty = np.diff(GammaArrivals(rate=1.0, cv=6.0, seed=0).arrival_times(20_000.0))
        cv_smooth = smooth.std() / smooth.mean()
        cv_bursty = bursty.std() / bursty.mean()
        assert cv_bursty > 2 * cv_smooth
        assert cv_bursty == pytest.approx(6.0, rel=0.25)

    def test_deterministic_per_seed(self):
        a = GammaArrivals(rate=0.35, cv=6.0, seed=11).arrival_times(1200.0)
        b = GammaArrivals(rate=0.35, cv=6.0, seed=11).arrival_times(1200.0)
        assert a == b

    def test_generate_builds_requests(self):
        requests = GammaArrivals(rate=0.5, seed=2, input_tokens=256, output_tokens=32).generate(600.0)
        assert all(isinstance(r, Request) for r in requests)
        assert all(r.input_tokens == 256 and r.output_tokens == 32 for r in requests)

    def test_fixed_arrivals(self):
        process = FixedArrivals([5.0, 1.0, 9.0])
        assert process.arrival_times(8.0) == [1.0, 5.0]

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)
        with pytest.raises(ValueError):
            GammaArrivals(rate=1.0, cv=0.0)
        with pytest.raises(ValueError):
            FixedArrivals([-1.0])

    def test_default_rates_match_paper(self):
        assert default_rate_for("OPT-6.7B") == pytest.approx(1.5)
        assert default_rate_for("GPT-20B") == pytest.approx(0.35)
        assert default_rate_for("LLaMA-30B") == pytest.approx(0.2)
        with pytest.raises(KeyError):
            default_rate_for("GPT-3")
        assert set(DEFAULT_ARRIVAL_RATES) == {"OPT-6.7B", "GPT-20B", "LLaMA-30B"}

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_arrivals_sorted_and_in_range(self, seed):
        times = GammaArrivals(rate=0.35, cv=6.0, seed=seed).arrival_times(1200.0)
        assert times == sorted(times)
        assert all(0 <= t < 1200.0 for t in times)


class TestTimeVaryingArrivals:
    def test_rate_profile_lookup(self):
        process = TimeVaryingArrivals([(0.0, 0.5), (100.0, 2.0)], cv=1.0, seed=0)
        assert process.rate_at(50.0) == pytest.approx(0.5)
        assert process.rate_at(150.0) == pytest.approx(2.0)

    def test_rate_change_shows_up_in_counts(self):
        process = TimeVaryingArrivals([(0.0, 0.2), (2000.0, 2.0)], cv=1.0, seed=1)
        times = process.arrival_times(4000.0)
        early = sum(1 for t in times if t < 2000.0)
        late = sum(1 for t in times if t >= 2000.0)
        assert late > 3 * early

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            TimeVaryingArrivals([])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            TimeVaryingArrivals([(0.0, -1.0)])


class TestMAFProfile:
    def test_profile_shape(self):
        profile = synthesize_maf_profile()
        rates = profile.rates()
        assert profile.peak_rate() == pytest.approx(max(rates))
        assert profile.peak_rate() > rates[0]
        assert min(rates) > 0

    def test_rescaling_sets_mean_rate(self):
        profile = synthesize_maf_profile()
        rescaled = profile.rescaled(0.5)
        assert rescaled.mean_rate() == pytest.approx(0.5, rel=1e-6)
        with pytest.raises(ValueError):
            profile.rescaled(0.0)

    def test_profile_to_arrival_process(self):
        profile = synthesize_maf_profile(duration=600.0)
        process = profile.to_arrival_process(cv=2.0, seed=0)
        times = process.arrival_times(600.0)
        assert times
        assert all(0 <= t < 600.0 for t in times)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            synthesize_maf_profile(ramp_start_fraction=0.6, peak_fraction=0.5)


class TestStreamingIterTimes:
    """The generator-backed ``iter_times`` must be *bit-identical* to the
    scalar reference ``arrival_times`` -- the streaming arrival source feeds
    the simulator from it, so any divergence would silently change golden
    digests."""

    def test_poisson_iter_matches_reference(self):
        process = PoissonArrivals(rate=2.0, seed=1)
        assert list(process.iter_times(5000.0)) == process.arrival_times(5000.0)

    def test_gamma_iter_matches_reference(self):
        process = GammaArrivals(rate=1.0, cv=6.0, seed=3)
        assert list(process.iter_times(50_000.0)) == process.arrival_times(50_000.0)

    def test_time_varying_iter_matches_reference(self):
        profile = synthesize_maf_profile(duration=1800.0, seed=7).rescaled(3.0)
        process = profile.to_arrival_process(cv=6.0, seed=4)
        assert list(process.iter_times(1800.0)) == process.arrival_times(1800.0)

    def test_time_varying_zero_rate_pieces_match_reference(self):
        process = TimeVaryingArrivals(
            [(0.0, 0.5), (100.0, 0.0), (200.0, 2.0), (400.0, 0.0)], cv=2.0, seed=9
        )
        assert list(process.iter_times(600.0)) == process.arrival_times(600.0)

    def test_fixed_iter_matches_reference(self):
        process = FixedArrivals([1.0, 5.0, 9.0])
        assert list(process.iter_times(8.0)) == process.arrival_times(8.0)

    @given(st.integers(min_value=0, max_value=50), st.floats(min_value=10.0, max_value=5000.0))
    @settings(max_examples=25, deadline=None)
    def test_gamma_iter_matches_reference_any_seed(self, seed, duration):
        process = GammaArrivals(rate=0.8, cv=4.0, seed=seed)
        assert list(process.iter_times(duration)) == process.arrival_times(duration)

    def test_count_arrivals_matches_length(self):
        process = GammaArrivals(rate=1.5, cv=6.0, seed=11)
        assert process.count_arrivals(3000.0) == len(process.arrival_times(3000.0))

    def test_generate_uses_streaming_times(self):
        process = GammaArrivals(rate=0.5, cv=3.0, seed=2)
        requests = process.generate(600.0)
        assert [r.arrival_time for r in requests] == process.arrival_times(600.0)
