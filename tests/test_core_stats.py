"""Tests for the serving statistics collector."""

import pytest

from repro.core.config import ParallelConfig
from repro.core.stats import AutoscaleRecord, ReconfigurationRecord, ServingStats
from repro.workload.request import Request


def finished_request(arrival, latency):
    request = Request(arrival_time=arrival, input_tokens=8, output_tokens=4)
    request.mark_started(arrival)
    request.mark_completed(arrival + latency)
    return request


class TestServingStats:
    def test_record_completion_and_latencies(self):
        stats = ServingStats(system_name="test")
        stats.record_completion(finished_request(0.0, 2.0))
        stats.record_completion(finished_request(5.0, 3.0))
        assert stats.completed_count == 2
        assert stats.latencies() == pytest.approx([2.0, 3.0])

    def test_incomplete_requests_are_excluded_from_latencies(self):
        stats = ServingStats()
        stats.record_completion(Request(arrival_time=0.0, input_tokens=8, output_tokens=4))
        assert stats.latencies() == []

    def test_request_timeline_is_sorted_by_arrival(self):
        stats = ServingStats()
        stats.record_completion(finished_request(10.0, 1.0))
        stats.record_completion(finished_request(2.0, 4.0))
        timeline = stats.request_timeline()
        assert [arrival for arrival, _ in timeline] == [2.0, 10.0]

    def test_record_reconfiguration_updates_timeline_and_stall(self):
        stats = ServingStats()
        old = ParallelConfig(1, 1, 4, 2)
        new = ParallelConfig(2, 1, 4, 2)
        stats.record_reconfiguration(
            ReconfigurationRecord(
                time=12.0,
                old_config=old,
                new_config=new,
                reason="preemption",
                stall_time=3.5,
            )
        )
        stats.record_reconfiguration(
            ReconfigurationRecord(
                time=40.0,
                old_config=new,
                new_config=old,
                reason="workload",
                stall_time=1.5,
            )
        )
        assert stats.total_stall_time == pytest.approx(5.0)
        assert [time for time, _ in stats.config_timeline] == [12.0, 40.0]
        assert stats.config_timeline[0][1] == new

    def test_record_autoscale(self):
        stats = ServingStats()
        record = AutoscaleRecord(
            time=30.0,
            policy="cost-aware",
            reason="scale up",
            acquired={"us-east-1a": 2},
            released={},
            fleet_before=4,
            desired_instances=6,
        )
        stats.record_autoscale(record)
        assert stats.autoscale_actions == [record]
        assert record.delta == 2

    def test_autoscale_delta_counts_releases(self):
        record = AutoscaleRecord(
            time=0.0,
            policy="queue-latency",
            reason="scale down",
            acquired={"a": 1},
            released={"b": 3},
        )
        assert record.delta == -2


class TestSummary:
    def _populated_stats(self):
        stats = ServingStats(system_name="SpotServe")
        stats.tokens_generated = 128
        stats.preemption_notices = 2
        stats.record_completion(finished_request(1.0, 2.5))
        stats.record_config(0.0, ParallelConfig(2, 1, 4, 2))
        stats.record_autoscale(
            AutoscaleRecord(time=30.0, policy="p", reason="r", acquired={"z": 1})
        )
        return stats

    def test_summary_contents(self):
        summary = self._populated_stats().summary()
        assert summary["system"] == "SpotServe"
        assert summary["completed"] == 1
        assert summary["tokens_generated"] == 128
        assert summary["autoscale_action_count"] == 1
        assert summary["autoscale_net_delta"] == 1
        assert summary["config_timeline"] == [(0.0, "(D=2, P=1, M=4, B=2)")]

    def test_summary_text_is_deterministic(self):
        a = self._populated_stats().summary_text()
        b = self._populated_stats().summary_text()
        assert a == b
        assert "completed=1" in a

    def test_summary_text_detects_divergence(self):
        a = self._populated_stats()
        b = self._populated_stats()
        b.tokens_generated += 1
        assert a.summary_text() != b.summary_text()


class TestIncrementalAggregates:
    def test_unretained_stats_match_retained_metrics(self):
        retained = ServingStats(system_name="s", retain_requests=True)
        unretained = ServingStats(system_name="s", retain_requests=False)
        for arrival, latency in [(0.0, 2.0), (5.0, 3.0), (1.0, 7.5), (9.0, 0.5)]:
            retained.record_completion(finished_request(arrival, latency))
            unretained.record_completion(finished_request(arrival, latency))
        assert unretained.completed_requests == []
        assert retained.completed_count == unretained.completed_count == 4
        assert retained.latencies() == unretained.latencies()
        assert retained.request_timeline() == unretained.request_timeline()
        assert retained.summary_text() == unretained.summary_text()

    def test_latency_sum_matches_sequential_sum_bitwise(self):
        # Zero arrivals so each request's stored latency is bit-exact, then
        # the streaming accumulator must equal left-to-right sum() exactly.
        stats = ServingStats()
        latencies = [0.1, 0.2, 0.30000000000000004, 7.7, 1e-12]
        for latency in latencies:
            stats.record_completion(finished_request(0.0, latency))
        assert stats.summary()["latency_sum"] == sum(latencies)
        assert stats.summary()["latency_max"] == max(latencies)

    def test_incomplete_request_counts_but_adds_no_latency(self):
        stats = ServingStats(retain_requests=False)
        stats.record_completion(Request(arrival_time=0.0, input_tokens=8, output_tokens=4))
        assert stats.completed_count == 1
        assert stats.latencies() == []
        assert stats.summary()["latency_sum"] == 0
