"""Integration-style tests for the SpotServe serving system."""

import pytest

from repro.cloud.provider import CloudProvider
from repro.cloud.trace import AvailabilityTrace, TraceEvent, TraceEventKind
from repro.core.server import SpotServeOptions, SpotServeSystem
from repro.llm.spec import GPT_20B, OPT_6_7B
from repro.sim.engine import Simulator
from repro.workload.arrival import FixedArrivals, GammaArrivals


def steady_trace(instances=6, duration=1200.0, events=()):
    return AvailabilityTrace(
        name="steady",
        initial_instances=instances,
        events=list(events),
        duration=duration,
    )


def build_system(trace, model=GPT_20B, options=None, rate=0.3):
    simulator = Simulator()
    provider = CloudProvider(simulator, trace)
    system = SpotServeSystem(
        simulator, provider, model, options=options, initial_arrival_rate=rate
    )
    return simulator, provider, system


class TestSteadyState:
    def test_initialize_deploys_a_configuration(self):
        _, _, system = build_system(steady_trace())
        system.initialize()
        assert system.current_config is not None
        assert system.pipelines
        assert system.current_config.num_instances(4) <= 6

    def test_all_requests_complete_without_preemptions(self):
        trace = steady_trace()
        _, _, system = build_system(trace)
        requests = FixedArrivals([10.0 * i for i in range(20)]).generate(trace.duration)
        system.submit_requests(requests)
        stats = system.run(until=trace.duration + 600.0)
        assert stats.completed_count == 20
        assert all(r.latency() is not None for r in stats.completed_requests)
        assert stats.preemption_notices == 0

    def test_latencies_are_at_least_the_execution_latency(self):
        trace = steady_trace()
        _, _, system = build_system(trace)
        requests = FixedArrivals([50.0]).generate(trace.duration)
        system.submit_requests(requests)
        stats = system.run(until=trace.duration)
        config = system.current_config
        floor = system.latency_model.l_exe(
            config.pipeline_degree, config.tensor_degree, 1
        )
        assert stats.latencies()[0] >= 0.9 * floor

    def test_no_serving_without_instances(self):
        trace = steady_trace(instances=0)
        _, _, system = build_system(trace)
        system.initialize()
        assert system.current_config is None
        assert system.pipelines == []


class TestPreemptionHandling:
    def preemption_trace(self):
        return steady_trace(
            instances=6,
            events=[TraceEvent(200.0, TraceEventKind.PREEMPT, 2)],
        )

    def test_preemption_triggers_reconfiguration_and_requests_survive(self):
        trace = self.preemption_trace()
        _, provider, system = build_system(trace)
        requests = GammaArrivals(rate=0.25, cv=2.0, seed=1).generate(trace.duration)
        system.submit_requests(requests)
        stats = system.run(until=trace.duration + 900.0)
        assert stats.preemption_notices == 2
        assert stats.reconfigurations
        assert stats.completed_count == len(requests)
        # The new deployment never uses the preempted instances.
        preempted = {
            inst.instance_id for inst in provider.instances if not inst.is_alive
        }
        for pipeline in system.pipelines:
            assert not preempted & set(pipeline.assignment.instance_ids)

    def test_reconfiguration_records_context_reuse(self):
        trace = self.preemption_trace()
        _, _, system = build_system(trace)
        requests = FixedArrivals([100.0, 150.0, 180.0]).generate(trace.duration)
        system.submit_requests(requests)
        stats = system.run(until=trace.duration)
        preemption_records = [
            r for r in stats.reconfigurations if "preemption" in r.reason
        ]
        assert preemption_records
        assert preemption_records[0].reused_bytes > 0

    def test_stateful_recovery_avoids_recomputation(self):
        """With stateful recovery the interrupted batch resumes from its
        committed token; disabling it recomputes from scratch."""
        def run(stateful):
            trace = self.preemption_trace()
            options = SpotServeOptions(stateful_recovery=stateful)
            _, _, system = build_system(trace, options=options)
            requests = FixedArrivals([180.0]).generate(trace.duration)
            system.submit_requests(requests)
            stats = system.run(until=trace.duration)
            return stats.completed_requests[0]

        preserved = run(stateful=True)
        recomputed = run(stateful=False)
        assert preserved.latency() <= recomputed.latency() + 1e-6
        assert recomputed.recomputed_tokens >= preserved.recomputed_tokens

    def test_acquisition_is_absorbed_or_improves_capacity(self):
        trace = steady_trace(
            instances=3,
            events=[TraceEvent(300.0, TraceEventKind.ACQUIRE, 3)],
        )
        _, _, system = build_system(trace, rate=0.5)
        requests = GammaArrivals(rate=0.4, cv=2.0, seed=2).generate(trace.duration)
        system.submit_requests(requests)
        stats = system.run(until=trace.duration + 900.0)
        assert stats.acquisitions == 3
        assert stats.completed_count == len(requests)
        assert system.current_config is not None

    def test_full_fleet_loss_halts_then_recovers(self):
        trace = steady_trace(
            instances=3,
            events=[
                TraceEvent(200.0, TraceEventKind.PREEMPT, 3),
                TraceEvent(500.0, TraceEventKind.ACQUIRE, 3),
            ],
        )
        _, _, system = build_system(trace)
        requests = FixedArrivals([100.0, 400.0]).generate(trace.duration)
        system.submit_requests(requests)
        stats = system.run(until=trace.duration + 900.0)
        assert stats.completed_count == 2


class TestOptions:
    def test_disabled_controller_keeps_configuration_shape(self):
        trace = steady_trace(
            instances=6,
            events=[TraceEvent(200.0, TraceEventKind.PREEMPT, 1)],
        )
        options = SpotServeOptions(adaptive_controller=False)
        _, _, system = build_system(trace, options=options)
        system.submit_requests(FixedArrivals([50.0, 300.0]).generate(trace.duration))
        initial = None
        system.initialize()
        initial = system.current_config
        stats = system.run(until=trace.duration)
        for _, config in stats.config_timeline:
            assert config.pipeline_degree == initial.pipeline_degree
            assert config.tensor_degree == initial.tensor_degree

    def test_on_demand_mixing_allocates_extra_instances(self):
        trace = steady_trace(
            instances=3,
            events=[TraceEvent(120.0, TraceEventKind.PREEMPT, 1)],
        )
        options = SpotServeOptions(allow_on_demand=True)
        simulator, provider, system = build_system(trace, options=options, rate=0.6)
        system.submit_requests(
            GammaArrivals(rate=0.6, cv=2.0, seed=0).generate(trace.duration)
        )
        system.run(until=trace.duration + 600.0)
        markets = {inst.market.value for inst in provider.instances}
        assert "on_demand" in markets

    def test_workload_check_scales_for_demand_surge(self):
        trace = steady_trace(instances=8)
        _, _, system = build_system(trace, model=OPT_6_7B, rate=0.5)
        # Quiet first half, then a sustained surge.
        quiet = [float(t) for t in range(50, 300, 25)]
        surge = [300.0 + 0.45 * i for i in range(1200)]
        system.submit_requests(FixedArrivals(quiet + surge).generate(trace.duration))
        stats = system.run(until=trace.duration + 600.0)
        assert stats.completed_count == len(quiet) + len(surge)
        workload_reconfigs = [r for r in stats.reconfigurations if r.reason == "workload"]
        assert workload_reconfigs


class TestArrivalRateEstimator:
    """The bisect-windowed estimator must pin the old full-scan semantics."""

    @staticmethod
    def reference_rate(system, now, arrival_times):
        """The pre-PR-3 deque-scan implementation, verbatim semantics."""
        from collections import deque

        times = deque(arrival_times)
        short_window = max(4.0 * system.options.workload_check_interval, 120.0)
        long_window = 3.0 * short_window
        while times and times[0] < now - 2 * long_window:
            times.popleft()

        def rate_over(window):
            span = min(window, max(now, 1.0))
            recent = sum(1 for t in times if t >= now - window)
            observed = recent / span
            if now < window:
                observed = max(observed, system.initial_arrival_rate)
            return observed

        observed = max(rate_over(short_window), rate_over(long_window))
        backlog_pressure = system.request_queue.pending / short_window
        return max(observed + backlog_pressure, 1e-3)

    def test_estimates_match_reference_scan(self):
        import numpy as np

        trace = steady_trace(duration=10_000.0)
        simulator, _, system = build_system(trace, rate=0.4)
        rng = np.random.default_rng(17)
        arrivals = np.cumsum(rng.exponential(2.0, 3000)).tolist()
        checkpoints = [0.0, 1.0, 119.9, 120.0, 360.0, 1500.0, 4321.5, 6000.0]
        consumed = 0
        for now in checkpoints:
            while consumed < len(arrivals) and arrivals[consumed] <= now:
                system._arrival_times.append(arrivals[consumed])
                consumed += 1
            simulator.clock.advance_to(now)
            expected = self.reference_rate(system, now, arrivals[:consumed])
            assert system.estimate_arrival_rate() == expected

    def test_estimates_match_reference_with_boundary_ties(self):
        # Arrival timestamps landing exactly on the window boundary must be
        # counted on the same side as the old `t >= now - window` scan.
        trace = steady_trace(duration=10_000.0)
        simulator, _, system = build_system(trace, rate=0.4)
        now = 500.0
        short_window = max(4.0 * system.options.workload_check_interval, 120.0)
        boundary = now - short_window
        times = [boundary - 1.0, boundary, boundary + 1e-9, now - 1.0]
        system._arrival_times.extend(times)
        simulator.clock.advance_to(now)
        assert system.estimate_arrival_rate() == self.reference_rate(system, now, times)

    def test_lazy_trim_keeps_memory_bounded(self):
        trace = steady_trace(duration=100_000.0)
        simulator, _, system = build_system(trace, rate=0.4)
        short_window = max(4.0 * system.options.workload_check_interval, 120.0)
        horizon = 2 * 3.0 * short_window  # the estimator's retention window
        step = 0.5
        now = 0.0
        for i in range(40_000):
            now = step * (i + 1)
            system._arrival_times.append(now)
            if i % 200 == 0:
                simulator.clock.advance_to(now)
                system.estimate_arrival_rate()
        # The kept list holds at most ~2x the retention horizon's arrivals.
        assert len(system._arrival_times) <= 2 * int(horizon / step) + 4096
