"""`estimate_arrival_rate` vs a naive reference, under adversarial inputs.

PR 3 turned the arrival-rate estimator into a bisect window over a
*lazily-trimmed* monotone list (``_arrival_times`` + ``_arrival_start``).
These tests cross-check that fast path against a naive full-scan reference
implementation of the documented math on the patterns most likely to break
a windowed bisect:

* burst ties -- dozens of arrivals sharing one timestamp, exactly on the
  window boundary and exactly at ``now``,
* out-of-window backlog -- thousands of stale arrivals that must be trimmed
  without disturbing the rate (and actually *are* trimmed),
* empty windows -- no recent arrivals at all, with and without queue
  backlog pressure,
* the early-run floor (``now < window`` falls back to the initial rate),
* a seeded randomized interleaving of appends, clock jumps and calls.

The reference recomputes from the full untrimmed history every time, so any
divergence introduced by the lazy trimming shows up immediately.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.server import ServingSystemBase


def naive_rate(
    times,
    now,
    pending=0,
    interval=30.0,
    initial_rate=0.35,
):
    """Reference implementation: full scan, no trimming, no bisect."""
    short = max(4.0 * interval, 120.0)
    long = 3.0 * short

    def rate_over(window):
        span = min(window, max(now, 1.0))
        recent = sum(1 for t in times if t >= now - window)
        observed = recent / span
        if now < window:
            observed = max(observed, initial_rate)
        return observed

    observed = max(rate_over(short), rate_over(long))
    return max(observed + pending / short, 1e-3)


class EstimatorHarness:
    """Just enough serving-system surface to borrow the real estimator.

    Borrows :meth:`ServingSystemBase.estimate_arrival_rate` unmodified, so
    the code under test is the production method, state mutation (lazy
    trimming) included.  ``history`` keeps the untrimmed shadow copy the
    naive reference scans.
    """

    estimate_arrival_rate = ServingSystemBase.estimate_arrival_rate

    def __init__(self, times=(), now=0.0, pending=0, interval=30.0, initial_rate=0.35):
        self.simulator = SimpleNamespace(now=now)
        self.options = SimpleNamespace(workload_check_interval=interval)
        self.request_queue = SimpleNamespace(pending=pending)
        self.initial_arrival_rate = initial_rate
        self._arrival_times = list(times)
        self._arrival_start = 0
        self.history = list(times)

    def arrive(self, time):
        self._arrival_times.append(time)
        self.history.append(time)

    def expected(self):
        return naive_rate(
            self.history,
            self.simulator.now,
            self.request_queue.pending,
            self.options.workload_check_interval,
            self.initial_arrival_rate,
        )


class TestAdversarialPatterns:
    def test_empty_history_uses_initial_rate_floor(self):
        harness = EstimatorHarness(now=0.0)
        assert harness.estimate_arrival_rate() == harness.expected()
        assert harness.estimate_arrival_rate() == pytest.approx(0.35)

    def test_early_run_floor_fades_once_windows_fill(self):
        # now < window keeps the initial-rate floor; later it must vanish.
        times = [float(t) for t in range(0, 60, 5)]
        early = EstimatorHarness(times=times, now=60.0)
        assert early.estimate_arrival_rate() == early.expected()
        late = EstimatorHarness(times=times, now=5000.0)
        assert late.estimate_arrival_rate() == late.expected()
        assert late.estimate_arrival_rate() == pytest.approx(1e-3)

    def test_burst_ties_on_the_window_boundary(self):
        # 40 arrivals at *exactly* now - short_window (120 s with the default
        # 30 s interval): bisect_left must count every tie, like the naive
        # ``t >= now - window`` scan does.
        now = 1000.0
        boundary = now - 120.0
        long_boundary = now - 360.0
        times = sorted([long_boundary] * 25 + [boundary] * 40 + [now] * 10)
        harness = EstimatorHarness(times=times, now=now, pending=7)
        assert harness.estimate_arrival_rate() == harness.expected()

    def test_just_outside_the_boundary_is_excluded(self):
        now = 1000.0
        inside = now - 120.0
        outside = np.nextafter(inside, -np.inf)
        with_inside = EstimatorHarness(times=[inside] * 10, now=now)
        with_outside = EstimatorHarness(times=[outside] * 10, now=now)
        assert with_inside.estimate_arrival_rate() == with_inside.expected()
        assert with_outside.estimate_arrival_rate() == with_outside.expected()
        # The short window sees 10 fewer arrivals one ulp outside; the long
        # window still catches them, so the two must differ via the short
        # window only when the short rate dominates -- the reference decides.

    def test_empty_window_with_backlog_pressure(self):
        # Every arrival is ancient; only the queued requests produce demand.
        times = [float(t) for t in range(0, 500)]
        harness = EstimatorHarness(times=times, now=10_000.0, pending=33)
        assert harness.estimate_arrival_rate() == harness.expected()
        assert harness.estimate_arrival_rate() == pytest.approx(33 / 120.0)

    def test_out_of_window_backlog_is_trimmed_identically(self):
        # Thousands of stale arrivals: the lazy trim must fire, shrink the
        # list, and change nothing about the estimate.
        stale = [float(t) for t in range(5000)]
        recent = [9_990.0, 9_995.0, 9_999.0]
        harness = EstimatorHarness(times=stale + recent, now=10_000.0, pending=2)
        before = len(harness._arrival_times)
        rate = harness.estimate_arrival_rate()
        after = len(harness._arrival_times)
        assert rate == harness.expected()
        assert after < before, "the stale backlog must actually be trimmed"
        assert after == len(recent)
        assert harness._arrival_start == 0
        # Idempotent: a second call sees the trimmed list, same answer.
        assert harness.estimate_arrival_rate() == rate

    def test_trim_never_fires_below_the_hysteresis_floor(self):
        # A small stale prefix (<1024) must be skipped via _arrival_start
        # without deleting anything.
        stale = [float(t) for t in range(800)]
        recent = [9_999.0]
        harness = EstimatorHarness(times=stale + recent, now=10_000.0)
        rate = harness.estimate_arrival_rate()
        assert rate == harness.expected()
        assert len(harness._arrival_times) == 801
        assert harness._arrival_start == 800


class TestRandomizedCrossCheck:
    def test_interleaved_appends_clock_jumps_and_calls(self):
        # A long seeded life: arrivals stream in (with deliberate ties),
        # the clock jumps by random strides (sometimes far ahead, stranding
        # the whole history out of window), the queue fills and drains --
        # after every step the production estimator must equal the naive
        # full-history reference, across trims.
        rng = np.random.default_rng(20260727)
        harness = EstimatorHarness()
        now = 0.0
        trims_seen = 0
        for step in range(400):
            stride = float(rng.choice([1.0, 7.0, 40.0, 500.0, 2500.0]))
            now += stride
            harness.simulator.now = now
            for _ in range(int(rng.integers(0, 30))):
                offset = float(np.round(rng.uniform(0.0, stride), 1))
                harness.arrive(now - offset)
            # Arrivals enter in event order; sort the tail like the real
            # system's monotone append stream would have produced it.
            harness._arrival_times[harness._arrival_start:] = sorted(
                harness._arrival_times[harness._arrival_start:]
            )
            harness.history.sort()
            harness.request_queue.pending = int(rng.integers(0, 50))
            before = len(harness._arrival_times)
            assert harness.estimate_arrival_rate() == pytest.approx(
                harness.expected(), rel=0, abs=0
            ), f"diverged at step {step} (now={now})"
            if len(harness._arrival_times) < before:
                trims_seen += 1
        assert trims_seen >= 1, "the sweep must exercise the trim path"
