"""End-to-end integration tests reproducing the paper's headline claims.

These tests run the full serving comparison on shortened versions of the
paper's scenarios and assert the *shape* of the results: who wins, roughly by
how much, and that cost savings materialise.  The full-length reproductions
live in ``benchmarks/``.
"""

import pytest

from repro.baselines.ondemand import build_on_demand_provider
from repro.core.server import SpotServeOptions, SpotServeSystem
from repro.experiments.runner import run_comparison, run_serving_experiment
from repro.experiments.scenarios import COMPARED_SYSTEMS, stable_workload_scenario
from repro.cloud.instance import Market
from repro.cloud.trace import get_trace
from repro.llm.spec import GPT_20B
from repro.sim.engine import Simulator
from repro.workload.arrival import GammaArrivals


@pytest.fixture(scope="module")
def gpt_bs_results():
    """GPT-20B on the harsher BS trace, all three systems, shared workload."""
    scenario = stable_workload_scenario("GPT-20B", "BS")
    return run_comparison(
        COMPARED_SYSTEMS,
        scenario.model_name,
        scenario.trace,
        scenario.arrival_process(),
        options_by_system={"SpotServe": scenario.options()},
    )


class TestFigure6Shape:
    def test_every_system_serves_every_request(self, gpt_bs_results):
        for result in gpt_bs_results.values():
            assert result.completion_ratio == pytest.approx(1.0)

    def test_spotserve_has_the_lowest_tail_latency(self, gpt_bs_results):
        spotserve = gpt_bs_results["SpotServe"]
        for name, result in gpt_bs_results.items():
            if name == "SpotServe":
                continue
            assert spotserve.latency.p99 <= result.latency.p99
            assert spotserve.latency.mean <= result.latency.mean

    def test_improvement_factors_are_significant(self, gpt_bs_results):
        """The paper reports 1.33x-9.13x P99 improvements; on the harsher BS
        trace the reproduction should show at least ~1.3x against both
        baselines."""
        spotserve = gpt_bs_results["SpotServe"].latency.p99
        repar = gpt_bs_results["Reparallelization"].latency.p99
        rerouting = gpt_bs_results["Rerouting"].latency.p99
        assert repar / spotserve > 1.3
        assert rerouting / spotserve > 1.2

    def test_spotserve_reconfigures_instead_of_restarting(self, gpt_bs_results):
        spotserve = gpt_bs_results["SpotServe"]
        repar = gpt_bs_results["Reparallelization"]
        assert spotserve.stats.total_stall_time < repar.stats.total_stall_time
        reused = sum(r.reused_bytes for r in spotserve.stats.reconfigurations)
        assert reused > 0


class TestFigure7Shape:
    def test_spot_serving_is_cheaper_than_on_demand(self):
        """Figure 7: serving on spot instances costs roughly half as much per
        token as an on-demand fleet of the same size (1.9 vs 3.9 $/h)."""
        scenario = stable_workload_scenario("GPT-20B", "AS", duration=600.0)
        spot = run_serving_experiment(
            SpotServeSystem,
            scenario.model_name,
            scenario.trace,
            scenario.arrival_process(),
            duration=scenario.duration,
            options=scenario.options(),
        )

        simulator = Simulator()
        od_trace = get_trace("AS")
        od_result = run_serving_experiment(
            SpotServeSystem,
            scenario.model_name,
            scenario.trace,
            scenario.arrival_process(),
            duration=scenario.duration,
            trace_market=Market.ON_DEMAND,
        )
        assert spot.total_cost < od_result.total_cost
        savings = 1.0 - spot.total_cost / od_result.total_cost
        assert savings > 0.3

    def test_cost_per_token_is_finite_and_small(self):
        scenario = stable_workload_scenario("GPT-20B", "AS", duration=600.0)
        result = run_serving_experiment(
            SpotServeSystem,
            scenario.model_name,
            scenario.trace,
            scenario.arrival_process(),
            duration=scenario.duration,
        )
        assert 0 < result.cost_per_token < 0.01


class TestOnDemandMixing:
    def test_plus_o_traces_reduce_tail_latency_or_match(self):
        """Mixing on-demand instances (the +O traces) should not hurt, and
        typically helps the tail because capacity recovers faster."""
        base = stable_workload_scenario("GPT-20B", "BS")
        spot_only = run_serving_experiment(
            SpotServeSystem,
            base.model_name,
            base.trace,
            base.arrival_process(),
            options=SpotServeOptions(allow_on_demand=False),
        )
        mixed = run_serving_experiment(
            SpotServeSystem,
            base.model_name,
            base.trace,
            base.arrival_process(),
            options=SpotServeOptions(allow_on_demand=True),
        )
        assert mixed.latency.p99 <= spot_only.latency.p99 * 1.1
        assert mixed.on_demand_cost >= 0.0
