"""Tests for spot availability traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.trace import (
    BUILTIN_TRACES,
    AvailabilityTrace,
    TraceEvent,
    TraceEventKind,
    generate_random_trace,
    get_trace,
    trace_as,
    trace_bs,
)


class TestTraceEvents:
    def test_delta_sign(self):
        assert TraceEvent(10.0, TraceEventKind.ACQUIRE, 2).delta == 2
        assert TraceEvent(10.0, TraceEventKind.PREEMPT, 3).delta == -3

    def test_invalid_events_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(-1.0, TraceEventKind.ACQUIRE)
        with pytest.raises(ValueError):
            TraceEvent(1.0, TraceEventKind.ACQUIRE, 0)


class TestBuiltinTraces:
    @pytest.mark.parametrize("name", sorted(BUILTIN_TRACES))
    def test_builtin_traces_are_valid(self, name):
        trace = BUILTIN_TRACES[name]()
        assert trace.min_instances >= 0
        assert trace.max_instances <= 16
        assert trace.duration > 0

    def test_figure5_shape(self):
        """AS and BS are 20-minute segments of a fleet of ~12 4-GPU instances
        that both dip and recover (Figure 5)."""
        for trace in (trace_as(), trace_bs()):
            assert trace.duration == pytest.approx(1200.0)
            assert trace.initial_instances == 12
            assert trace.gpus_per_instance == 4
            assert trace.min_instances < trace.initial_instances
            assert trace.preemption_times()
            assert trace.acquisition_times()

    def test_bs_is_harsher_than_as(self):
        assert len(trace_bs().preemption_times()) > len(trace_as().preemption_times())
        assert trace_bs().min_instances <= trace_as().min_instances

    def test_get_trace_aliases(self):
        assert get_trace("as").name == "AS"
        assert get_trace("BS").name == "BS"
        assert get_trace("A'S").name == "A'S"

    def test_get_trace_unknown(self):
        with pytest.raises(KeyError):
            get_trace("CS")


class TestTraceQueries:
    def test_instances_at(self):
        trace = trace_as()
        assert trace.instances_at(0.0) == 12
        assert trace.instances_at(200.0) == 11
        assert trace.instances_at(10_000.0) == trace.instance_counts()[-1][1]

    def test_average_between_min_and_max(self):
        trace = trace_bs()
        assert trace.min_instances <= trace.average_instances() <= trace.max_instances

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityTrace(
                name="bad",
                initial_instances=1,
                events=[TraceEvent(1.0, TraceEventKind.PREEMPT, 5)],
            )

    def test_scaled_trace(self):
        trace = trace_as()
        scaled = trace.scaled(2.0)
        assert scaled.duration == pytest.approx(2 * trace.duration)
        assert scaled.instances_at(2 * 200.0) == trace.instances_at(200.0)
        with pytest.raises(ValueError):
            trace.scaled(0.0)

    def test_events_sorted_on_construction(self):
        trace = AvailabilityTrace(
            name="t",
            initial_instances=4,
            events=[
                TraceEvent(100.0, TraceEventKind.PREEMPT, 1),
                TraceEvent(50.0, TraceEventKind.ACQUIRE, 1),
            ],
        )
        assert [event.time for event in trace.events] == [50.0, 100.0]


class TestRandomTraces:
    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_random_trace_stays_within_bounds(self, seed):
        trace = generate_random_trace(
            "rand", duration=1200.0, initial_instances=8, min_instances=2, max_instances=12, seed=seed
        )
        counts = [count for _, count in trace.instance_counts()]
        assert min(counts) >= 2
        assert max(counts) <= 12

    def test_random_trace_deterministic_per_seed(self):
        a = generate_random_trace("a", seed=7)
        b = generate_random_trace("b", seed=7)
        assert [(e.time, e.kind, e.count) for e in a.events] == [
            (e.time, e.kind, e.count) for e in b.events
        ]

    def test_invalid_initial_count_rejected(self):
        with pytest.raises(ValueError):
            generate_random_trace("bad", initial_instances=1, min_instances=2)
