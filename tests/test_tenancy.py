"""Tests for multi-tenant serving on a shared spot fleet.

Five claims are pinned here:

* **Digest neutrality** -- installing a :class:`FleetPartitioner` on a
  single-tenant run leaves the two frozen golden digests byte-identical,
  and the test counts the per-round consultations so the claim is not
  vacuous (the hook really ran); a partitioner that returns a *proper
  subset* demonstrably shrinks the fleet the control stack plans on.
* **Partitioner properties** -- shares are disjoint, cover at most the
  fleet, honour the starvation floor and per-tenant caps, respect zone
  eligibility, and are deterministic across repeats and input orderings.
* **Differential composition** -- a two-tenant run over the mirrored
  four-zone market produces per-tenant digests byte-equal to two solo
  runs of the same tenants on their own zone pairs: tenants compose like
  independent single-tenant systems on the partitioned sub-fleets.
* **Per-tenant conservation** -- ``submitted == completed + unfinished +
  dropped + rejected + shed`` holds for every tenant at random mid-run
  probe points under randomized cloud-fault mixes, and the per-tenant
  counters sum to the fleet-wide aggregate.
* **No cross-tenant teardown** -- ``_teardown_pipelines_using`` and
  ``_reroute_batch`` are tenant-local by construction (they iterate
  ``self.pipelines`` and re-queue into ``self.request_queue``); the
  shared-zone outage regression pins that two tenants co-located on the
  same zones evacuate independently with disjoint held sets.

The perf harness's ``multi_tenant`` scenario and its ``--check`` guards
are pinned at the bottom (fail / pass / skip), mirroring the plan-guard
suite.
"""

import dataclasses
import hashlib
import importlib.util
import json
import random
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.cloud.provider import CloudProvider
from repro.cloud.zone import AvailabilityTrace, OutageWindow, PriceSchedule, ZoneSpec
from repro.core.server import SpotServeOptions, SpotServeSystem
from repro.core.stats import ServingStats
from repro.core.tenancy import (
    FleetPartitioner,
    MultiTenantSystem,
    TenantDemand,
    TenantSpec,
)
from repro.experiments.runner import (
    run_multi_tenant_experiment,
    run_serving_experiment,
)
from repro.experiments.scenarios import (
    multi_tenant_scenario,
    multi_zone_fluctuating_scenario,
    overload_market,
    stable_workload_scenario,
)
from repro.faults.injector import (
    DegradedWindow,
    FaultInjector,
    FaultPlan,
    ZoneFaultModel,
)
from repro.llm.spec import get_model
from repro.sim.engine import Simulator
from repro.workload.arrival import GammaArrivals

REPO_ROOT = Path(__file__).resolve().parents[1]

# The frozen golden digests (see tests/test_streaming_equivalence.py): the
# tenancy hooks must not move them while no multi-tenant setup is active.
SINGLE_ZONE_SHA256 = "13bd9e142347b849dcba2c5f52829a5ca9c7638ccb40c83512c45d80ce4d64b5"
MULTI_ZONE_SHA256 = "33c8a35b9b2764488dda4379defb50adea6283cafdcfed7618b22167ecc8502c"


# ----------------------------------------------------------------------
# FleetPartitioner properties (randomized)
# ----------------------------------------------------------------------
def _fleet(rng, zones, size):
    instances = []
    for i in range(size):
        zone = rng.choice(zones)
        instances.append(SimpleNamespace(instance_id=f"{zone}-spot-{i:04d}", zone=zone))
    return instances


def _random_demands(rng, zones, count, with_caps=False):
    demands = []
    for i in range(count):
        tenant_zones = None
        if rng.random() < 0.5:
            tenant_zones = tuple(
                sorted(rng.sample(zones, rng.randint(1, len(zones))))
            )
        demands.append(
            TenantDemand(
                name=f"tenant-{i}",
                priority=rng.uniform(0.5, 3.0),
                arrival_rate=rng.uniform(0.01, 2.0),
                min_instances=rng.randint(0, 2),
                max_instances=rng.randint(1, 4) if with_caps else None,
                zones=tenant_zones,
            )
        )
    return demands


class TestFleetPartitionerProperties:
    ZONES = ["prop-a", "prop-b", "prop-c"]

    @pytest.mark.parametrize("seed", range(6))
    def test_shares_are_disjoint_cover_at_most_the_fleet_and_respect_zones(
        self, seed
    ):
        rng = random.Random(seed)
        instances = _fleet(rng, self.ZONES, rng.randint(0, 12))
        demands = _random_demands(rng, self.ZONES, rng.randint(2, 4))
        shares = FleetPartitioner().partition(instances, demands)
        by_name = {demand.name: demand for demand in demands}
        by_id = {inst.instance_id: inst for inst in instances}
        assigned = [iid for share in shares.values() for iid in share]
        # Disjoint: no instance appears in two shares.
        assert len(assigned) == len(set(assigned))
        # Coverage: only real instances are handed out.
        assert set(assigned) <= set(by_id)
        # Zone eligibility: a tenant never receives a zone it may not occupy.
        for name, share in shares.items():
            for iid in share:
                assert by_name[name].eligible(by_id[iid])

    @pytest.mark.parametrize("seed", range(6))
    def test_starvation_floor_is_honoured_when_feasible(self, seed):
        rng = random.Random(100 + seed)
        demands = [
            TenantDemand(
                name=f"tenant-{i}",
                priority=rng.uniform(0.5, 3.0),
                arrival_rate=rng.uniform(0.01, 2.0),
                min_instances=rng.randint(0, 2),
            )
            for i in range(rng.randint(2, 4))
        ]
        partitioner = FleetPartitioner(starvation_floor=1)
        floors = {
            demand.name: max(demand.min_instances, partitioner.starvation_floor)
            for demand in demands
        }
        # Fleet large enough to feed every floor: nobody may starve.
        size = sum(floors.values()) + rng.randint(0, 4)
        instances = _fleet(rng, self.ZONES, size)
        shares = partitioner.partition(instances, demands)
        for demand in demands:
            assert len(shares[demand.name]) >= floors[demand.name]

    @pytest.mark.parametrize("seed", range(6))
    def test_caps_are_respected(self, seed):
        rng = random.Random(200 + seed)
        instances = _fleet(rng, self.ZONES, rng.randint(4, 12))
        demands = _random_demands(rng, self.ZONES, rng.randint(2, 4), with_caps=True)
        shares = FleetPartitioner().partition(instances, demands)
        for demand in demands:
            assert len(shares[demand.name]) <= demand.max_instances

    @pytest.mark.parametrize("seed", range(6))
    def test_partition_is_deterministic_and_input_order_invariant(self, seed):
        rng = random.Random(300 + seed)
        instances = _fleet(rng, self.ZONES, rng.randint(2, 12))
        demands = _random_demands(rng, self.ZONES, rng.randint(2, 4))
        first = FleetPartitioner().partition(instances, demands)
        second = FleetPartitioner().partition(instances, demands)
        assert first == second
        shuffled = list(instances)
        rng.shuffle(shuffled)
        reordered_demands = list(reversed(demands))
        third = FleetPartitioner().partition(shuffled, reordered_demands)
        assert first == third

    def test_sticky_assignment_keeps_previous_owners(self):
        instances = [
            SimpleNamespace(instance_id=f"z1-spot-{i:04d}", zone="z1")
            for i in range(4)
        ]
        demands = [
            TenantDemand(name="a", priority=1.0, arrival_rate=1.0),
            TenantDemand(name="b", priority=1.0, arrival_rate=1.0),
        ]
        previous = {
            "z1-spot-0000": "a",
            "z1-spot-0001": "a",
            "z1-spot-0002": "b",
            "z1-spot-0003": "b",
        }
        shares = FleetPartitioner().partition(instances, demands, previous=previous)
        assert set(shares["a"]) == {"z1-spot-0000", "z1-spot-0001"}
        assert set(shares["b"]) == {"z1-spot-0002", "z1-spot-0003"}

    def test_demand_shift_moves_instances_but_keeps_the_rest_sticky(self):
        instances = [
            SimpleNamespace(instance_id=f"z1-spot-{i:04d}", zone="z1")
            for i in range(4)
        ]
        demands = [
            TenantDemand(name="a", priority=1.0, arrival_rate=1.0),
            TenantDemand(name="b", priority=1.0, arrival_rate=9.0),
        ]
        previous = {
            "z1-spot-0000": "a",
            "z1-spot-0001": "a",
            "z1-spot-0002": "b",
            "z1-spot-0003": "b",
        }
        shares = FleetPartitioner().partition(instances, demands, previous=previous)
        # b's demand grew 9x: it takes three instances, a keeps its floor --
        # and b's previously-owned pair never churns.
        assert set(shares["a"]) == {"z1-spot-0000"}
        assert {"z1-spot-0002", "z1-spot-0003"} <= set(shares["b"])
        assert len(shares["b"]) == 3


# ----------------------------------------------------------------------
# Digest neutrality: a partitioner is installed, consulted, and changes
# nothing on a single-tenant run (the non-vacuous hook guarantee)
# ----------------------------------------------------------------------
class _CountingPartitioner(FleetPartitioner):
    """Counts per-round consultations so the neutrality claim is not vacuous."""

    def __init__(self):
        super().__init__()
        self.share_calls = 0
        self.share_sizes = []

    def share_for(self, system):
        self.share_calls += 1
        share = super().share_for(system)
        self.share_sizes.append(len(share))
        return share


class _DropOnePartitioner(FleetPartitioner):
    """Returns a proper subset: the control stack must plan on less fleet."""

    def __init__(self):
        super().__init__()
        self.full_sizes = []
        self.dropped = None

    def share_for(self, system):
        share = super().share_for(system)
        self.full_sizes.append(len(share))
        if len(share) > 1:
            ordered = sorted(share)
            self.dropped = ordered[-1]
            return frozenset(ordered[:-1])
        return share


class TestDigestNeutrality:
    def test_single_zone_golden_with_partitioner_installed(self):
        partitioner = _CountingPartitioner()
        scenario = stable_workload_scenario("OPT-6.7B", "AS", duration=400.0)
        options = scenario.options()
        options.fleet_partitioner = partitioner
        result = run_serving_experiment(
            SpotServeSystem,
            scenario.model_name,
            scenario.trace,
            scenario.arrival_process(),
            duration=scenario.duration,
            drain_time=200.0,
            options=options,
        )
        digest = hashlib.sha256(result.stats.summary_text().encode()).hexdigest()
        assert digest == SINGLE_ZONE_SHA256
        # The hook really ran, once per workload check, and always handed the
        # unregistered single-tenant system its entire stable set back.
        assert partitioner.share_calls > 0

    def test_multi_zone_golden_with_partitioner_installed(self):
        partitioner = _CountingPartitioner()
        scenario, arrivals = multi_zone_fluctuating_scenario(
            "OPT-6.7B", duration=600.0
        )
        options = scenario.options()
        options.fleet_partitioner = partitioner
        result = run_serving_experiment(
            SpotServeSystem,
            scenario.model_name,
            trace=None,
            arrival_process=arrivals,
            duration=scenario.duration,
            drain_time=300.0,
            options=options,
            zones=scenario.zones,
            allow_spot_requests=True,
        )
        digest = hashlib.sha256(result.stats.summary_text().encode()).hexdigest()
        assert digest == MULTI_ZONE_SHA256
        assert partitioner.share_calls > 0

    def test_subset_partitioner_shrinks_the_planning_fleet(self):
        """A non-trivial share demonstrably restricts the control stack."""
        partitioner = _DropOnePartitioner()
        simulator = Simulator()
        provider = CloudProvider(
            simulator, None, zones=overload_market(300.0), allow_spot_requests=False
        )
        system = SpotServeSystem(
            simulator,
            provider,
            get_model("OPT-6.7B"),
            options=SpotServeOptions(fleet_partitioner=partitioner),
            initial_arrival_rate=0.3,
        )
        system.submit_arrival_process(GammaArrivals(0.3, cv=6.0, seed=0), 300.0)
        system.initialize()
        simulator.run(until=360.0)
        # The partitioner saw the whole pinned six-instance fleet...
        assert max(partitioner.full_sizes) == 6
        # ...but the system may only plan on five of them.
        manager = system.instance_manager
        assert manager.excluded == frozenset({partitioner.dropped})
        assert len(manager.stable_instances()) == 5
        # Conservation is unaffected by the restriction.
        stats = system.stats
        assert system.submitted_requests == (
            stats.completed_count
            + system.unfinished_request_count()
            + stats.requests_dropped
            + stats.requests_rejected
            + stats.requests_shed
        )


# ----------------------------------------------------------------------
# Differential composition: two tenants == two solo runs, byte for byte
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def combined_result():
    scenario = multi_tenant_scenario("OPT-6.7B", duration=600.0)
    return scenario, run_multi_tenant_experiment(scenario, drain_time=120.0)


def _solo_scenario(scenario, tenant_name):
    """The same tenant alone on just its own mirrored zone pair."""
    spec = next(s for s in scenario.tenants if s.name == tenant_name)
    zones = tuple(zone for zone in scenario.zones if zone.name in spec.zones)
    return dataclasses.replace(scenario, tenants=(spec,), zones=zones)


class TestDifferentialComposition:
    @pytest.mark.parametrize("tenant_name", ["latency-tier", "batch-tier"])
    def test_tenant_digest_matches_its_solo_run(self, combined_result, tenant_name):
        scenario, combined = combined_result
        solo = run_multi_tenant_experiment(
            _solo_scenario(scenario, tenant_name), drain_time=120.0
        )
        combined_text = combined.tenants[tenant_name].stats.summary_text()
        solo_text = solo.tenants[tenant_name].stats.summary_text()
        assert combined_text == solo_text
        # The zone pairs are mirrored and the victim RNG is seeded per zone
        # *name*, so even the billing share reproduces exactly.
        assert combined.tenants[tenant_name].total_cost == pytest.approx(
            solo.tenants[tenant_name].total_cost
        )

    def test_per_tenant_digests_carry_the_tenant_label(self, combined_result):
        _, combined = combined_result
        for name, tenant_result in combined.tenants.items():
            assert f"tenant={name!r}" in tenant_result.stats.summary_text()

    def test_aggregate_digest_has_the_legacy_key_set(self, combined_result):
        """The fleet-wide aggregate stays out of the legacy golden surface."""
        _, combined = combined_result
        aggregate_text = combined.stats.summary_text()
        assert "tenant=" not in aggregate_text
        legacy_keys = set(ServingStats(system_name="x").summary())
        aggregate_keys = set(combined.stats.summary())
        assert aggregate_keys == legacy_keys

    def test_latency_tenant_beats_batch_p99_at_equal_fleet_cost(
        self, combined_result
    ):
        """The headline policy-benchmark row: SLO policy, not fleet, wins."""
        _, combined = combined_result
        latency = combined.tenants["latency-tier"]
        batch = combined.tenants["batch-tier"]
        assert latency.total_cost == pytest.approx(batch.total_cost)
        assert latency.latency.p99 < batch.latency.p99


# ----------------------------------------------------------------------
# Per-tenant conservation under randomized cloud-fault mixes
# ----------------------------------------------------------------------
def _tenant_conservation(system):
    for tenant_system in system.systems.values():
        stats = tenant_system.stats
        assert tenant_system.submitted_requests == (
            stats.completed_count
            + tenant_system.unfinished_request_count()
            + stats.requests_dropped
            + stats.requests_rejected
            + stats.requests_shed
        ), f"conservation violated for tenant {tenant_system.tenant!r}"


def _fleet_conservation(system):
    aggregate = system.aggregate_stats()
    assert system.submitted_requests == (
        aggregate.completed_count
        + system.unfinished_request_count()
        + aggregate.requests_dropped
        + aggregate.requests_rejected
        + aggregate.requests_shed
    )
    # The aggregate really is the sum of the tenant counters.
    assert aggregate.completed_count == sum(
        s.stats.completed_count for s in system.systems.values()
    )
    assert aggregate.requests_shed == sum(
        s.stats.requests_shed for s in system.systems.values()
    )


class TestPerTenantConservationUnderFaults:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_conservation_holds_at_random_probe_points(self, seed):
        rng = random.Random(seed)
        plan = FaultPlan(
            seed=seed,
            default_model=ZoneFaultModel(
                refusal_prob=rng.uniform(0.0, 0.5),
                launch_failure_prob=rng.uniform(0.0, 0.3),
                straggler_prob=rng.uniform(0.0, 0.5),
                straggler_multiplier=1.0 + 3.0 * rng.random(),
                early_preemption_prob=rng.uniform(0.0, 1.0),
                min_grace_fraction=0.2,
            ),
            degraded_windows=(
                DegradedWindow(
                    start=rng.uniform(50.0, 200.0),
                    end=rng.uniform(250.0, 550.0),
                    bandwidth_factor=rng.uniform(1.0, 12.0),
                ),
            ),
        )
        base = multi_tenant_scenario("OPT-6.7B", duration=600.0, seed=seed)
        # Autoscaling tenants keep the faultable allocation path hot.
        tenants = tuple(
            dataclasses.replace(spec, autoscale_policy="cost-aware")
            for spec in base.tenants
        )
        simulator = Simulator()
        provider = CloudProvider(
            simulator,
            None,
            zones=base.zones,
            allow_spot_requests=True,
            fault_injector=FaultInjector(plan),
        )
        system = MultiTenantSystem(simulator, provider, tenants)
        system.submit_workloads(base.duration)
        system.initialize()

        probes = sorted(rng.uniform(1.0, 720.0) for _ in range(10)) + [720.0]
        for until in probes:
            simulator.run(until=until)
            _tenant_conservation(system)
            _fleet_conservation(system)


# ----------------------------------------------------------------------
# Shared-zone outage: co-located tenants evacuate independently
# ----------------------------------------------------------------------
def _shared_outage_market(duration):
    """Three zones shared by both tenants; the big cheap one goes dark."""
    outage = OutageWindow(
        start=0.4 * duration, duration=0.3 * duration, warning=30.0
    )
    zone_a = ZoneSpec(
        name="sh-a",
        trace=AvailabilityTrace(
            name="sh-a-mt", initial_instances=3, events=[], duration=duration
        ),
        spot_pricing=PriceSchedule.flat(1.2),
        outages=(outage,),
    )
    zone_b = ZoneSpec(
        name="sh-b",
        trace=AvailabilityTrace(
            name="sh-b-mt", initial_instances=2, events=[], duration=duration
        ),
        spot_pricing=PriceSchedule.flat(1.9),
    )
    zone_c = ZoneSpec(
        name="sh-c",
        trace=AvailabilityTrace(
            name="sh-c-mt", initial_instances=1, events=[], duration=duration
        ),
        spot_pricing=PriceSchedule.flat(2.6),
    )
    return (zone_a, zone_b, zone_c)


class TestSharedZoneEvacuation:
    """No cross-tenant pipeline leakage on a shared-zone outage.

    ``_teardown_pipelines_using`` and ``_reroute_batch`` are tenant-local
    by construction: they iterate ``self.pipelines`` and re-queue into
    ``self.request_queue``, so a tenant can only ever tear down and
    re-queue its *own* work.  The genuinely shared surfaces were the
    provider-wide fleet scans (zone views, launching counts, initial-fleet
    adoption), which the ownership predicates now filter -- this regression
    pins the end-to-end consequence: two tenants co-located on the same
    zones ride out a full-zone outage with disjoint held sets and intact
    per-tenant conservation.
    """

    def test_colocated_tenants_evacuate_independently(self):
        duration = 600.0
        tenants = (
            TenantSpec(
                name="shared-a",
                priority=1.5,
                arrival_rate=0.25,
                seed=11,
                autoscale_policy="cost-aware",
            ),
            TenantSpec(
                name="shared-b",
                priority=1.0,
                arrival_rate=0.25,
                seed=12,
                autoscale_policy="cost-aware",
            ),
        )
        simulator = Simulator()
        provider = CloudProvider(
            simulator,
            None,
            zones=_shared_outage_market(duration),
            allow_spot_requests=True,
        )
        system = MultiTenantSystem(simulator, provider, tenants)
        system.submit_workloads(duration)
        system.initialize()
        simulator.run(until=duration + 150.0)

        _tenant_conservation(system)
        _fleet_conservation(system)
        system_a = system.systems["shared-a"]
        system_b = system.systems["shared-b"]
        # Both tenants observed the shared outage on their own stats...
        assert system_a.stats.zone_outages == 1
        assert system_b.stats.zone_outages == 1
        # ...requests were evacuated, never lost...
        assert system_a.stats.requests_dropped == 0
        assert system_b.stats.requests_dropped == 0
        # ...and the fleets never bled into each other: held sets are
        # disjoint and every held instance is owned by its holder.
        held_a = set(system_a.instance_manager._held)
        held_b = set(system_b.instance_manager._held)
        assert not held_a & held_b
        for instance_id in held_a:
            assert system.owners.get(instance_id) == "shared-a"
        for instance_id in held_b:
            assert system.owners.get(instance_id) == "shared-b"
        # Pipelines are strictly tenant-local (the teardown/reroute surface).
        ids_a = system_a._pipeline_instance_ids()
        ids_b = system_b._pipeline_instance_ids()
        assert not ids_a & ids_b
        assert ids_a <= held_a
        assert ids_b <= held_b


# ----------------------------------------------------------------------
# Tenant label on the stats digest
# ----------------------------------------------------------------------
class TestTenantLabel:
    def test_unlabelled_stats_have_no_tenant_key(self):
        stats = ServingStats(system_name="legacy")
        assert "tenant" not in stats.summary()
        assert "tenant=" not in stats.summary_text()

    def test_labelled_stats_carry_the_tenant_key(self):
        stats = ServingStats(system_name="mt", tenant="latency-tier")
        assert stats.summary()["tenant"] == "latency-tier"
        assert "tenant='latency-tier'" in stats.summary_text()


# ----------------------------------------------------------------------
# Perf-harness integration: the multi_tenant scenario and its --check guards
# ----------------------------------------------------------------------
class TestPerfCheckMultiTenantGuard:
    """run_perf.py --check guards the multi_tenant scenario (fail/pass/skip)."""

    @staticmethod
    def load_run_perf():
        spec = importlib.util.spec_from_file_location(
            "run_perf", REPO_ROOT / "benchmarks" / "perf" / "run_perf.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def report(round_ms, events):
        return {
            "adaptation_round_ms": round_ms,
            "sim_events_per_sec": events,
            "phases": {},
        }

    def baseline(self, tmp_path, entry):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"scenarios": {"multi_tenant": entry}}))
        return path

    def test_scenario_is_registered(self):
        run_perf = self.load_run_perf()
        assert "multi_tenant" in run_perf.SCENARIOS

    def test_committed_baseline_guards_the_scenario(self):
        baseline = json.loads(
            (REPO_ROOT / "benchmarks" / "perf" / "baseline.json").read_text()
        )
        entry = baseline["scenarios"]["multi_tenant"]
        assert entry["adaptation_round_ms"] > 0
        assert entry["min_sim_events_per_sec"] > 0

    def test_ci_matrix_runs_the_scenario(self):
        workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "--scenario multi_tenant" in workflow

    def test_round_regression_fails_the_check(self, tmp_path):
        run_perf = self.load_run_perf()
        baseline = self.baseline(
            tmp_path, {"adaptation_round_ms": 4.5, "min_sim_events_per_sec": 25000}
        )
        reports = {"multi_tenant": self.report(round_ms=20.0, events=90000.0)}
        assert run_perf.check_regression(reports, baseline, max_regression=2.0) == 1

    def test_events_floor_regression_fails_the_check(self, tmp_path):
        run_perf = self.load_run_perf()
        baseline = self.baseline(
            tmp_path, {"adaptation_round_ms": 4.5, "min_sim_events_per_sec": 25000}
        )
        reports = {"multi_tenant": self.report(round_ms=2.0, events=10000.0)}
        assert run_perf.check_regression(reports, baseline, max_regression=2.0) == 1

    def test_within_limits_passes(self, tmp_path):
        run_perf = self.load_run_perf()
        baseline = self.baseline(
            tmp_path, {"adaptation_round_ms": 4.5, "min_sim_events_per_sec": 25000}
        )
        reports = {"multi_tenant": self.report(round_ms=4.0, events=90000.0)}
        assert run_perf.check_regression(reports, baseline, max_regression=2.0) == 0

    def test_unlisted_scenario_skips_the_guard(self, tmp_path):
        run_perf = self.load_run_perf()
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"scenarios": {}}))
        reports = {"multi_tenant": self.report(round_ms=999.0, events=1.0)}
        assert run_perf.check_regression(reports, path, max_regression=2.0) == 0
