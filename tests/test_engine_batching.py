"""Tests for the request queue and batch formation."""

import pytest

from repro.engine.batching import Batch, RequestQueue
from repro.workload.request import Request


def make_requests(n, start=0.0):
    return [Request(arrival_time=start + i, output_tokens=16) for i in range(n)]


class TestBatch:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            Batch([])

    def test_progress_tracks_slowest_request(self):
        requests = make_requests(3)
        requests[0].commit_tokens(5)
        batch = Batch(requests)
        assert batch.committed_tokens == 0
        assert batch.remaining_tokens == 16

    def test_commit_tokens_applies_to_all(self):
        batch = Batch(make_requests(4))
        batch.commit_tokens(6)
        assert all(r.committed_tokens == 6 for r in batch.requests)
        assert not batch.is_complete
        batch.commit_tokens(10)
        assert batch.is_complete

    def test_drop_cache_resets_all(self):
        batch = Batch(make_requests(2))
        batch.commit_tokens(6)
        batch.drop_cache()
        assert batch.committed_tokens == 0
        assert all(not r.cache_preserved for r in batch.requests)

    def test_mark_interrupted(self):
        batch = Batch(make_requests(2))
        batch.mark_interrupted()
        assert all(r.interruptions == 1 for r in batch.requests)

    def test_unique_batch_ids(self):
        assert Batch(make_requests(1)).batch_id != Batch(make_requests(1)).batch_id


class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue(max_batch_size=2)
        requests = make_requests(3)
        for request in requests:
            queue.enqueue(request)
        batch = queue.next_batch()
        assert batch.requests == requests[:2]
        assert queue.pending == 1

    def test_next_batch_empty_returns_none(self):
        assert RequestQueue().next_batch() is None

    def test_batch_size_override(self):
        queue = RequestQueue(max_batch_size=8)
        for request in make_requests(5):
            queue.enqueue(request)
        batch = queue.next_batch(max_batch_size=3)
        assert batch.size == 3

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            RequestQueue(max_batch_size=0)
        queue = RequestQueue()
        queue.enqueue(make_requests(1)[0])
        with pytest.raises(ValueError):
            queue.next_batch(max_batch_size=0)

    def test_enqueue_front_preserves_relative_order(self):
        queue = RequestQueue(max_batch_size=4)
        tail = make_requests(2, start=100.0)
        for request in tail:
            queue.enqueue(request)
        interrupted = make_requests(2, start=0.0)
        queue.enqueue_front(interrupted)
        batch = queue.next_batch()
        assert batch.requests == interrupted + tail

    def test_peek_oldest_arrival(self):
        queue = RequestQueue()
        assert queue.peek_oldest_arrival() is None
        queue.enqueue(Request(arrival_time=42.0))
        assert queue.peek_oldest_arrival() == 42.0

    def test_total_enqueued_counter(self):
        queue = RequestQueue()
        for request in make_requests(5):
            queue.enqueue(request)
        queue.next_batch()
        assert queue.total_enqueued == 5
