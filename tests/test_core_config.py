"""Tests for parallel configurations and the configuration search space."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ConfigurationSpace, ParallelConfig
from repro.llm.memory import MemoryModel
from repro.llm.spec import GPT_20B, LLAMA_30B, OPT_6_7B


class TestParallelConfig:
    def test_derived_quantities(self):
        config = ParallelConfig(2, 3, 4, 8)
        assert config.num_gpus == 24
        assert config.gpus_per_pipeline == 12
        assert config.concurrent_requests == 16
        assert config.num_instances(4) == 6
        assert config.without_batch() == (2, 3, 4)

    def test_instance_count_rounds_up(self):
        assert ParallelConfig(1, 2, 3, 1).num_instances(4) == 2

    def test_invalid_components_rejected(self):
        with pytest.raises(ValueError):
            ParallelConfig(0, 1, 1, 1)
        with pytest.raises(ValueError):
            ParallelConfig(1, 1, 1, 0)
        with pytest.raises(ValueError):
            ParallelConfig(1, 2, 3, 1).num_instances(0)

    def test_compatibility_with_model_geometry(self):
        assert ParallelConfig(1, 2, 4, 1).is_compatible_with(GPT_20B)
        assert not ParallelConfig(1, 2, 5, 1).is_compatible_with(GPT_20B)
        assert not ParallelConfig(1, 100, 1, 1).is_compatible_with(GPT_20B)

    def test_ordering_and_equality(self):
        assert ParallelConfig(1, 2, 3, 4) == ParallelConfig(1, 2, 3, 4)
        assert ParallelConfig(1, 1, 1, 1) < ParallelConfig(2, 1, 1, 1)


class TestConfigurationSpace:
    def test_feasible_configs_respect_gpu_budget(self):
        space = ConfigurationSpace(GPT_20B)
        configs = space.feasible_configs(num_instances=4)
        assert configs
        assert all(config.num_gpus <= 16 for config in configs)

    def test_no_configs_without_instances(self):
        assert ConfigurationSpace(GPT_20B).feasible_configs(0) == []

    def test_all_configs_fit_memory(self):
        space = ConfigurationSpace(GPT_20B)
        for config in space.feasible_configs(3):
            assert space.fits(config)

    def test_head_divisibility_respected(self):
        space = ConfigurationSpace(LLAMA_30B)
        for config in space.feasible_configs(4):
            assert LLAMA_30B.num_heads % config.tensor_degree == 0

    def test_small_model_allows_small_fleets(self):
        space = ConfigurationSpace(OPT_6_7B)
        assert space.feasible_configs(1)

    def test_big_model_needs_more_instances(self):
        space = ConfigurationSpace(LLAMA_30B)
        assert space.feasible_configs(2) == []
        # Full-batch (B=8) serving of LLaMA-30B needs at least 4 instances
        # (16 GPUs, Table 1); 3 instances only admit small-batch configs.
        assert [c for c in space.feasible_configs(3) if c.batch_size == 8] == []
        assert [c for c in space.feasible_configs(4) if c.batch_size == 8]

    def test_migration_buffer_shrinks_space(self):
        roomy = ConfigurationSpace(GPT_20B)
        tight = ConfigurationSpace(GPT_20B, migration_buffer_bytes=GPT_20B.total_param_bytes / 16)
        assert len(tight.feasible_configs(3)) < len(roomy.feasible_configs(3))

    def test_invalid_batch_sizes_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(GPT_20B, batch_sizes=())

    @given(instances=st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_space_grows_with_fleet(self, instances):
        space = ConfigurationSpace(GPT_20B)
        smaller = len(space.feasible_configs(instances))
        larger = len(space.feasible_configs(instances + 1))
        assert larger >= smaller
