"""Randomized cross-check of the Kuhn-Munkres solver against brute force.

The device mapper trusts :mod:`repro.matching.hungarian` to be *optimal*;
this suite verifies optimality exhaustively on small rectangular matrices
(where all assignments can be enumerated), including the degenerate shapes
the mapper actually produces: empty graphs, single rows/columns, heavy ties
and near-infinite sentinel costs.
"""

import itertools

import numpy as np
import pytest

from repro.matching.hungarian import (
    _SCALAR_THRESHOLD,
    _solve_square,
    assignment_weight,
    greedy_assignment,
    maximum_weight_assignment,
    minimum_cost_assignment,
)


def reference_solve_square(cost):
    """The original scalar-loop Jonker-Volgenant solver, kept verbatim.

    The production solver routes small matrices through a scalar fast path
    and larger ones through numpy-vectorized inner loops; both must
    reproduce this reference *assignment* (not merely its cost), pinning
    the tie-breaking order of the vectorized argmin.
    """
    cost = np.asarray(cost, dtype=float)
    n = cost.shape[0]
    INF = float("inf")
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    match_col = np.full(n + 1, 0, dtype=int)
    way = np.zeros(n + 1, dtype=int)
    padded = np.zeros((n + 1, n + 1))
    padded[1:, 1:] = cost
    for row in range(1, n + 1):
        match_col[0] = row
        j0 = 0
        minv = np.full(n + 1, INF)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = match_col[j0]
            delta = INF
            j1 = -1
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = padded[i0, j] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[match_col[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match_col[j0] == 0:
                break
        while True:
            j1 = way[j0]
            match_col[j0] = match_col[j1]
            j0 = j1
            if j0 == 0:
                break
    assignment = [0] * n
    for j in range(1, n + 1):
        if match_col[j] != 0:
            assignment[match_col[j] - 1] = j - 1
    return assignment


def brute_force_min_cost(cost):
    """Exhaustive minimum-cost assignment on a small rectangular matrix."""
    cost = np.asarray(cost, dtype=float)
    rows, cols = cost.shape
    best = None
    if rows <= cols:
        for combo in itertools.permutations(range(cols), rows):
            total = sum(cost[r, c] for r, c in enumerate(combo))
            if best is None or total < best:
                best = total
    else:
        for combo in itertools.permutations(range(rows), cols):
            total = sum(cost[r, c] for c, r in enumerate(combo))
            if best is None or total < best:
                best = total
    return best


def solver_cost(cost):
    assignment = minimum_cost_assignment(cost)
    cost = np.asarray(cost, dtype=float)
    assert len(assignment) == min(cost.shape)
    rows = [r for r, _ in assignment]
    cols = [c for _, c in assignment]
    assert len(set(rows)) == len(rows)
    assert len(set(cols)) == len(cols)
    return sum(cost[r, c] for r, c in assignment)


class TestDegenerateShapes:
    def test_empty_matrix(self):
        assert minimum_cost_assignment([]) == []
        assert maximum_weight_assignment([]) == []

    def test_single_cell(self):
        assert minimum_cost_assignment([[7.0]]) == [(0, 0)]

    def test_one_by_n_picks_cheapest_column(self):
        assert minimum_cost_assignment([[5.0, 1.0, 3.0]]) == [(0, 1)]

    def test_n_by_one_picks_cheapest_row(self):
        assignment = minimum_cost_assignment([[5.0], [1.0], [3.0]])
        assert assignment == [(1, 0)]

    def test_all_ties_assigns_everyone_once(self):
        cost = np.ones((4, 4))
        assignment = minimum_cost_assignment(cost)
        assert sorted(r for r, _ in assignment) == [0, 1, 2, 3]
        assert sorted(c for _, c in assignment) == [0, 1, 2, 3]
        assert solver_cost(cost) == pytest.approx(4.0)

    def test_infinite_costs_rejected(self):
        with pytest.raises(ValueError):
            minimum_cost_assignment([[1.0, float("inf")], [2.0, 3.0]])
        with pytest.raises(ValueError):
            maximum_weight_assignment([[float("nan"), 1.0]])

    def test_large_sentinel_costs_avoided(self):
        # The mapper encodes "forbidden" edges as huge-but-finite costs; the
        # solver must route around them when an alternative exists.
        big = 1e15
        cost = [[big, 1.0], [2.0, big]]
        assignment = sorted(minimum_cost_assignment(cost))
        assert assignment == [(0, 1), (1, 0)]


class TestRandomizedCrossCheck:
    @pytest.mark.parametrize("seed", range(20))
    def test_square_matrices_match_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        cost = rng.uniform(0.0, 10.0, size=(n, n))
        assert solver_cost(cost) == pytest.approx(brute_force_min_cost(cost))

    @pytest.mark.parametrize("seed", range(20, 40))
    def test_rectangular_matrices_match_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 6))
        cols = int(rng.integers(1, 6))
        cost = rng.uniform(0.0, 10.0, size=(rows, cols))
        assert solver_cost(cost) == pytest.approx(brute_force_min_cost(cost))

    @pytest.mark.parametrize("seed", range(40, 52))
    def test_tie_heavy_matrices_match_brute_force(self, seed):
        # Integer costs from a tiny alphabet force many optimal ties; the
        # solver must still land on *an* optimum.
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(2, 6))
        cols = int(rng.integers(2, 6))
        cost = rng.integers(0, 3, size=(rows, cols)).astype(float)
        assert solver_cost(cost) == pytest.approx(brute_force_min_cost(cost))

    @pytest.mark.parametrize("seed", range(52, 64))
    def test_maximum_weight_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 6))
        cols = int(rng.integers(1, 6))
        weights = rng.uniform(0.0, 5.0, size=(rows, cols))
        assignment = maximum_weight_assignment(weights)
        best = -brute_force_min_cost(-weights)
        assert assignment_weight(weights, assignment) == pytest.approx(best)

    @pytest.mark.parametrize("seed", range(64, 72))
    def test_optimal_never_worse_than_greedy(self, seed):
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.0, 5.0, size=(5, 5))
        optimal = assignment_weight(weights, maximum_weight_assignment(weights))
        greedy = assignment_weight(weights, greedy_assignment(weights))
        assert optimal >= greedy - 1e-9


class TestVectorizedSolver:
    """Pin the vectorized solver against the scalar reference implementation.

    These matrices exercise the numpy fast path (sizes beyond the scalar
    threshold), the scalar fast path, and the shapes the device mapper
    produces at scale: rectangular fleets, all-zero (stateless) graphs and
    tie-heavy duplicate weights.  Assignments -- not just costs -- must match
    so the vectorized argmin tie-breaking is pinned exactly.
    """

    @pytest.mark.parametrize("seed", range(100, 120))
    def test_assignments_identical_to_reference_across_threshold(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 2 * _SCALAR_THRESHOLD))
        cost = rng.uniform(0.0, 10.0, size=(n, n))
        assert _solve_square(cost.copy()) == reference_solve_square(cost)

    @pytest.mark.parametrize("seed", range(120, 136))
    def test_tie_heavy_assignments_identical_to_reference(self, seed):
        # Integer costs from a tiny alphabet maximise duplicate weights; the
        # exact optimum chosen depends entirely on tie-breaking order.
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 14))
        cost = rng.integers(0, 2, size=(n, n)).astype(float)
        assert _solve_square(cost.copy()) == reference_solve_square(cost)

    @pytest.mark.parametrize("n", [1, 4, _SCALAR_THRESHOLD, _SCALAR_THRESHOLD + 1, 12])
    def test_all_zero_square_yields_identity(self, n):
        # The device mapper skips inner solves for stateless instances on the
        # grounds that KM on an all-zero matrix is the identity pairing; this
        # pins that equivalence on both solver paths.
        assert _solve_square(np.zeros((n, n))) == list(range(n))

    @pytest.mark.parametrize("shape", [(3, 7), (7, 3), (2, 12), (12, 2)])
    def test_all_zero_rectangular_yields_identity_prefix(self, shape):
        assignment = minimum_cost_assignment(np.zeros(shape))
        expected = [(i, i) for i in range(min(shape))]
        assert sorted(assignment) == expected

    @pytest.mark.parametrize("seed", range(136, 148))
    def test_large_square_matches_scipy(self, seed):
        scipy_opt = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(seed)
        n = int(rng.integers(8, 16))
        cost = rng.uniform(0.0, 10.0, size=(n, n))
        assignment = minimum_cost_assignment(cost)
        rows, cols = scipy_opt.linear_sum_assignment(cost)
        assert sum(cost[r, c] for r, c in assignment) == pytest.approx(
            cost[rows, cols].sum()
        )

    @pytest.mark.parametrize("seed", range(148, 160))
    def test_large_rectangular_matches_scipy(self, seed):
        scipy_opt = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(2, 14))
        cols = int(rng.integers(2, 14))
        cost = rng.uniform(0.0, 10.0, size=(rows, cols))
        assignment = minimum_cost_assignment(cost)
        assert len(assignment) == min(rows, cols)
        srows, scols = scipy_opt.linear_sum_assignment(cost)
        assert sum(cost[r, c] for r, c in assignment) == pytest.approx(
            cost[srows, scols].sum()
        )

    @pytest.mark.parametrize("seed", range(160, 170))
    def test_duplicate_weight_maximum_matching_is_optimal(self, seed):
        scipy_opt = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(4, 12))
        cols = int(rng.integers(4, 12))
        # Few distinct values -> many optimal assignments.
        weights = rng.choice([0.0, 1.0, 2.5], size=(rows, cols))
        assignment = maximum_weight_assignment(weights)
        srows, scols = scipy_opt.linear_sum_assignment(weights, maximize=True)
        assert assignment_weight(weights, assignment) == pytest.approx(
            weights[srows, scols].sum()
        )
