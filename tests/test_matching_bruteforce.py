"""Randomized cross-check of the Kuhn-Munkres solver against brute force.

The device mapper trusts :mod:`repro.matching.hungarian` to be *optimal*;
this suite verifies optimality exhaustively on small rectangular matrices
(where all assignments can be enumerated), including the degenerate shapes
the mapper actually produces: empty graphs, single rows/columns, heavy ties
and near-infinite sentinel costs.
"""

import itertools

import numpy as np
import pytest

from repro.matching.hungarian import (
    assignment_weight,
    greedy_assignment,
    maximum_weight_assignment,
    minimum_cost_assignment,
)


def brute_force_min_cost(cost):
    """Exhaustive minimum-cost assignment on a small rectangular matrix."""
    cost = np.asarray(cost, dtype=float)
    rows, cols = cost.shape
    best = None
    if rows <= cols:
        for combo in itertools.permutations(range(cols), rows):
            total = sum(cost[r, c] for r, c in enumerate(combo))
            if best is None or total < best:
                best = total
    else:
        for combo in itertools.permutations(range(rows), cols):
            total = sum(cost[r, c] for c, r in enumerate(combo))
            if best is None or total < best:
                best = total
    return best


def solver_cost(cost):
    assignment = minimum_cost_assignment(cost)
    cost = np.asarray(cost, dtype=float)
    assert len(assignment) == min(cost.shape)
    rows = [r for r, _ in assignment]
    cols = [c for _, c in assignment]
    assert len(set(rows)) == len(rows)
    assert len(set(cols)) == len(cols)
    return sum(cost[r, c] for r, c in assignment)


class TestDegenerateShapes:
    def test_empty_matrix(self):
        assert minimum_cost_assignment([]) == []
        assert maximum_weight_assignment([]) == []

    def test_single_cell(self):
        assert minimum_cost_assignment([[7.0]]) == [(0, 0)]

    def test_one_by_n_picks_cheapest_column(self):
        assert minimum_cost_assignment([[5.0, 1.0, 3.0]]) == [(0, 1)]

    def test_n_by_one_picks_cheapest_row(self):
        assignment = minimum_cost_assignment([[5.0], [1.0], [3.0]])
        assert assignment == [(1, 0)]

    def test_all_ties_assigns_everyone_once(self):
        cost = np.ones((4, 4))
        assignment = minimum_cost_assignment(cost)
        assert sorted(r for r, _ in assignment) == [0, 1, 2, 3]
        assert sorted(c for _, c in assignment) == [0, 1, 2, 3]
        assert solver_cost(cost) == pytest.approx(4.0)

    def test_infinite_costs_rejected(self):
        with pytest.raises(ValueError):
            minimum_cost_assignment([[1.0, float("inf")], [2.0, 3.0]])
        with pytest.raises(ValueError):
            maximum_weight_assignment([[float("nan"), 1.0]])

    def test_large_sentinel_costs_avoided(self):
        # The mapper encodes "forbidden" edges as huge-but-finite costs; the
        # solver must route around them when an alternative exists.
        big = 1e15
        cost = [[big, 1.0], [2.0, big]]
        assignment = sorted(minimum_cost_assignment(cost))
        assert assignment == [(0, 1), (1, 0)]


class TestRandomizedCrossCheck:
    @pytest.mark.parametrize("seed", range(20))
    def test_square_matrices_match_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        cost = rng.uniform(0.0, 10.0, size=(n, n))
        assert solver_cost(cost) == pytest.approx(brute_force_min_cost(cost))

    @pytest.mark.parametrize("seed", range(20, 40))
    def test_rectangular_matrices_match_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 6))
        cols = int(rng.integers(1, 6))
        cost = rng.uniform(0.0, 10.0, size=(rows, cols))
        assert solver_cost(cost) == pytest.approx(brute_force_min_cost(cost))

    @pytest.mark.parametrize("seed", range(40, 52))
    def test_tie_heavy_matrices_match_brute_force(self, seed):
        # Integer costs from a tiny alphabet force many optimal ties; the
        # solver must still land on *an* optimum.
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(2, 6))
        cols = int(rng.integers(2, 6))
        cost = rng.integers(0, 3, size=(rows, cols)).astype(float)
        assert solver_cost(cost) == pytest.approx(brute_force_min_cost(cost))

    @pytest.mark.parametrize("seed", range(52, 64))
    def test_maximum_weight_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 6))
        cols = int(rng.integers(1, 6))
        weights = rng.uniform(0.0, 5.0, size=(rows, cols))
        assignment = maximum_weight_assignment(weights)
        best = -brute_force_min_cost(-weights)
        assert assignment_weight(weights, assignment) == pytest.approx(best)

    @pytest.mark.parametrize("seed", range(64, 72))
    def test_optimal_never_worse_than_greedy(self, seed):
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.0, 5.0, size=(5, 5))
        optimal = assignment_weight(weights, maximum_weight_assignment(weights))
        greedy = assignment_weight(weights, greedy_assignment(weights))
        assert optimal >= greedy - 1e-9
