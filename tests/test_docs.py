"""Documentation gate: markdown links resolve, docstring coverage holds.

Runs the same stdlib-only checker the CI docs job invokes
(``tools/check_docs.py``), so a broken relative link in README/docs or a
docstring-coverage regression on the public control-plane surface fails
tier-1 locally before it fails CI.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402

MARKDOWN = ["README.md", "ROADMAP.md", "docs", "benchmarks/perf/README.md"]
COVERAGE_PATHS = ["src/repro/core", "src/repro/experiments"]
COVERAGE_FLOOR = 90.0


def test_markdown_relative_links_resolve():
    files = check_docs.iter_markdown_files(MARKDOWN)
    assert len(files) >= 4  # README, ROADMAP, ARCHITECTURE, BENCHMARKS, ...
    errors = check_docs.check_markdown_links(files)
    assert errors == []


def test_architecture_doc_exists_and_is_linked_from_readme():
    architecture = REPO_ROOT / "docs" / "ARCHITECTURE.md"
    assert architecture.exists()
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    # The architecture doc covers the three required sections.
    text = architecture.read_text()
    assert "Lifecycle of a request" in text
    assert "Lifecycle of an adaptation round" in text
    assert "golden-digest contract" in text


def test_benchmarks_doc_consolidates_the_harness():
    text = (REPO_ROOT / "docs" / "BENCHMARKS.md").read_text()
    for needle in (
        "--jobs",
        "--profile",
        "--check",
        "--policy-benchmark",
        "adaptation_round_ms",
        "sim_events_per_sec",
        "-m slow",
    ):
        assert needle in text, f"BENCHMARKS.md lost its {needle!r} section"


def test_docstring_coverage_floor():
    documented, total, missing = check_docs.docstring_coverage(COVERAGE_PATHS)
    assert total > 100  # the surface actually got scanned
    pct = 100.0 * documented / total
    assert pct >= COVERAGE_FLOOR, (
        f"docstring coverage {pct:.1f}% fell below {COVERAGE_FLOOR}%; "
        f"undocumented: {missing[:10]}"
    )


def test_checker_cli_passes_on_the_repo():
    argv = ["--fail-under", str(COVERAGE_FLOOR)]
    for path in COVERAGE_PATHS:
        argv += ["--coverage-path", path]
    argv += MARKDOWN
    assert check_docs.main(argv) == 0
