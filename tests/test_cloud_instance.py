"""Tests for cloud instance types, lifecycle and billing hours."""

import pytest

from repro.cloud.instance import (
    G4DN_12XLARGE,
    Instance,
    InstanceState,
    InstanceType,
    Market,
)


def spot_instance(launch_time=0.0):
    return Instance(instance_type=G4DN_12XLARGE, market=Market.SPOT, launch_time=launch_time)


def on_demand_instance(launch_time=0.0):
    return Instance(
        instance_type=G4DN_12XLARGE, market=Market.ON_DEMAND, launch_time=launch_time
    )


class TestInstanceType:
    def test_paper_prices(self):
        """Figure 7 quotes 3.9 $/h on-demand vs 1.9 $/h spot for g4dn.12xlarge."""
        assert G4DN_12XLARGE.spot_price_per_hour == pytest.approx(1.9)
        assert G4DN_12XLARGE.on_demand_price_per_hour == pytest.approx(3.9)
        assert G4DN_12XLARGE.gpus_per_instance == 4
        assert G4DN_12XLARGE.grace_period == pytest.approx(30.0)

    def test_price_per_market(self):
        assert G4DN_12XLARGE.price_per_hour(Market.SPOT) < G4DN_12XLARGE.price_per_hour(
            Market.ON_DEMAND
        )

    def test_invalid_gpu_count_rejected(self):
        with pytest.raises(ValueError):
            InstanceType(gpus_per_instance=0)

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            InstanceType(spot_price_per_hour=-1.0)


class TestInstanceLifecycle:
    def test_unique_instance_ids(self):
        a, b = spot_instance(), spot_instance()
        assert a.instance_id != b.instance_id

    def test_gpu_ids(self):
        instance = spot_instance()
        assert len(instance.gpu_ids) == 4
        assert all(inst_id == instance.instance_id for inst_id, _ in instance.gpu_ids)

    def test_launching_not_usable(self):
        instance = spot_instance()
        assert not instance.is_usable
        assert instance.is_alive

    def test_ready_then_usable(self):
        instance = spot_instance()
        instance.mark_ready(10.0)
        assert instance.is_usable
        assert instance.ready_time == 10.0

    def test_double_ready_rejected(self):
        instance = spot_instance()
        instance.mark_ready(10.0)
        with pytest.raises(ValueError):
            instance.mark_ready(20.0)

    def test_grace_period_keeps_instance_usable(self):
        instance = spot_instance()
        instance.mark_ready(0.0)
        deadline = instance.notify_preemption(100.0)
        assert deadline == pytest.approx(130.0)
        assert instance.state is InstanceState.GRACE_PERIOD
        assert instance.is_usable

    def test_preemption_terminates(self):
        instance = spot_instance()
        instance.mark_ready(0.0)
        instance.notify_preemption(100.0)
        instance.preempt(130.0)
        assert not instance.is_usable
        assert not instance.is_alive
        assert instance.termination_time == 130.0

    def test_on_demand_never_preempted(self):
        instance = on_demand_instance()
        instance.mark_ready(0.0)
        with pytest.raises(ValueError):
            instance.notify_preemption(10.0)
        with pytest.raises(ValueError):
            instance.preempt(10.0)

    def test_release(self):
        instance = on_demand_instance()
        instance.mark_ready(0.0)
        instance.release(500.0)
        assert instance.state is InstanceState.RELEASED
        with pytest.raises(ValueError):
            instance.release(600.0)

    def test_billed_hours(self):
        instance = spot_instance(launch_time=0.0)
        instance.mark_ready(0.0)
        assert instance.billed_hours(1800.0) == pytest.approx(0.5)
        instance.notify_preemption(3570.0)
        instance.preempt(3600.0)
        assert instance.billed_hours(7200.0) == pytest.approx(1.0)
