"""Equivalence tests for the warm-started, zone-decomposed map phase.

The map-phase fast path rests on four claims, each pinned here:

* the vectorized weight matrix is **bitwise** equal to the scalar
  :meth:`DeviceMapper.reuse_weight`, cell by cell;
* a warm-started assignment solve is **bit-identical** to a cold solve of
  the same matrix, for any seed state (the solver resumes the reference
  sweep from a verified row prefix rather than re-deriving a merely-optimal
  answer);
* per-zone / per-component decomposition only fires when its dominance
  condition holds (no positive edge crosses a component boundary) and then
  matches the global solve's total matched weight exactly;
* the fast path end to end -- sparsified flat solve, decomposed components,
  memoised hierarchical inner solves, warm states carried across rounds --
  produces the same placements and the same reused-byte totals as the
  scalar reference implementation (``fast_path=False``) under randomized
  fleet churn.
"""

import importlib.util
import json
import random
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import ParallelConfig
from repro.core.device_mapper import DeviceMapper
from repro.engine.context import MetaContextManager
from repro.engine.placement import mesh_positions
from repro.llm.spec import GPT_20B, OPT_6_7B
from repro.matching.bipartite import positive_components
from repro.matching.hungarian import (
    assignment_weight,
    greedy_assignment,
    maximum_weight_assignment,
    minimum_cost_assignment,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def random_matrix(rng, rows, cols, sparsity=0.5, integers=False):
    matrix = rng.random((rows, cols))
    matrix[rng.random((rows, cols)) < sparsity] = 0.0
    if integers:
        matrix = np.floor(matrix * 100)
    return matrix


class TestWarmStartSolver:
    def test_identical_matrix_is_a_full_cache_hit(self):
        rng = np.random.default_rng(7)
        cost = rng.random((12, 12))
        cold, state = minimum_cost_assignment(cost, return_state=True)
        assert state.resumed_from == 0
        warm, warm_state = minimum_cost_assignment(
            cost, initial_assignment=state, return_state=True
        )
        assert warm == cold
        assert warm_state.resumed_from == cost.shape[0]

    def test_suffix_change_resumes_mid_sweep(self):
        rng = np.random.default_rng(11)
        cost = rng.random((14, 14))
        cold, state = minimum_cost_assignment(cost, return_state=True)
        changed = cost.copy()
        changed[-1] = rng.random(14)
        warm, warm_state = minimum_cost_assignment(
            changed, initial_assignment=state, return_state=True
        )
        # Only the last row differs, so the sweep reuses all prior rows ...
        assert warm_state.resumed_from == cost.shape[0] - 1
        # ... and still equals a cold solve bit for bit.
        assert warm == minimum_cost_assignment(changed)

    def test_shape_change_falls_back_to_cold(self):
        rng = np.random.default_rng(13)
        cost = rng.random((10, 10))
        _, state = minimum_cost_assignment(cost, return_state=True)
        grown = rng.random((11, 11))
        warm, warm_state = minimum_cost_assignment(
            grown, initial_assignment=state, return_state=True
        )
        assert warm_state.resumed_from == 0
        assert warm == minimum_cost_assignment(grown)

    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_round_chain_matches_cold_each_round(self, seed):
        """Random per-round deltas; the threaded warm state never diverges."""
        rng = np.random.default_rng(seed)
        size = int(rng.integers(3, 18))
        cost = rng.random((size, size))
        state = None
        for _ in range(8):
            delta_kind = rng.integers(0, 4)
            if delta_kind == 0:
                # Perturb a random suffix of rows (fleet tail churn).
                row = int(rng.integers(0, size))
                cost[row:] = rng.random((size - row, size))
            elif delta_kind == 1:
                # Whole new matrix (config change).
                size = int(rng.integers(3, 18))
                cost = rng.random((size, size))
            elif delta_kind == 2:
                # Single-cell bump.
                cost[rng.integers(0, size), rng.integers(0, size)] = rng.random()
            # delta_kind == 3: unchanged matrix (full cache hit).
            warm, state = minimum_cost_assignment(
                cost, initial_assignment=state, return_state=True
            )
            assert warm == minimum_cost_assignment(cost)

    def test_rectangular_warm_start(self):
        rng = np.random.default_rng(17)
        weights = random_matrix(rng, 9, 5)
        cold, state = maximum_weight_assignment(weights, return_state=True)
        warm, _ = maximum_weight_assignment(
            weights, initial_assignment=state, return_state=True
        )
        assert warm == cold
        assert all(row < 9 and col < 5 for row, col in warm)


class TestGreedySkipsZeroEdges:
    def test_no_zero_weight_pairs_are_matched(self):
        rng = np.random.default_rng(23)
        weights = random_matrix(rng, 10, 8, sparsity=0.8)
        pairs = greedy_assignment(weights)
        assert all(weights[row, col] > 0 for row, col in pairs)

    def test_matched_weight_equals_dense_enumeration(self):
        """Skipping zero edges cannot change the greedy matched weight."""

        def dense_greedy(weights):
            weights = np.asarray(weights, dtype=float)
            edges = [
                (weights[r, c], r, c)
                for r in range(weights.shape[0])
                for c in range(weights.shape[1])
            ]
            edges.sort(key=lambda item: (-item[0], item[1], item[2]))
            used_rows, used_cols, result = set(), set(), []
            for _, r, c in edges:
                if r in used_rows or c in used_cols:
                    continue
                used_rows.add(r)
                used_cols.add(c)
                result.append((r, c))
            return result

        rng = np.random.default_rng(29)
        for _ in range(50):
            weights = random_matrix(
                rng, int(rng.integers(1, 9)), int(rng.integers(1, 9)), sparsity=0.6
            )
            sparse = greedy_assignment(weights)
            dense = dense_greedy(weights)
            assert assignment_weight(weights, sparse) == assignment_weight(
                weights, dense
            )
            # The sparse result is exactly the dense result minus zero edges.
            assert sparse == [(r, c) for r, c in dense if weights[r, c] > 0]

    def test_all_zero_matrix_matches_nothing(self):
        assert greedy_assignment(np.zeros((4, 6))) == []


class TestPositiveComponents:
    @pytest.mark.parametrize("seed", range(15))
    def test_dominance_condition_holds(self, seed):
        """No positive weight ever crosses a component boundary."""
        rng = np.random.default_rng(seed)
        weights = random_matrix(
            rng, int(rng.integers(1, 20)), int(rng.integers(1, 20)), sparsity=0.85
        )
        components = positive_components(weights)
        for i, (rows_a, cols_a) in enumerate(components):
            for j, (rows_b, cols_b) in enumerate(components):
                if i == j:
                    continue
                assert not weights[np.ix_(rows_a, cols_b)].any()
                assert not weights[np.ix_(rows_b, cols_a)].any()

    @pytest.mark.parametrize("seed", range(15))
    def test_components_cover_every_positive_cell(self, seed):
        rng = np.random.default_rng(100 + seed)
        weights = random_matrix(
            rng, int(rng.integers(1, 20)), int(rng.integers(1, 20)), sparsity=0.85
        )
        components = positive_components(weights)
        covered = np.zeros_like(weights, dtype=bool)
        all_rows, all_cols = [], []
        for rows, cols in components:
            covered[np.ix_(rows, cols)] = True
            all_rows.extend(rows)
            all_cols.extend(cols)
        assert covered[weights > 0].all()
        # Components are disjoint on both sides.
        assert len(all_rows) == len(set(all_rows))
        assert len(all_cols) == len(set(all_cols))
        # Vertices without a positive edge belong to no component.
        assert set(all_rows) == set(np.flatnonzero(weights.any(axis=1)).tolist())
        assert set(all_cols) == set(np.flatnonzero(weights.any(axis=0)).tolist())

    @pytest.mark.parametrize("seed", range(15))
    def test_decomposed_solve_matches_global_solve(self, seed):
        """When the dominance condition holds, solving per component is exact.

        Integer weights keep the totals exactly representable, so the
        equality is exact, not approximate.
        """
        rng = np.random.default_rng(200 + seed)
        weights = random_matrix(
            rng,
            int(rng.integers(1, 16)),
            int(rng.integers(1, 16)),
            sparsity=0.85,
            integers=True,
        )
        global_total = assignment_weight(weights, maximum_weight_assignment(weights))
        decomposed_total = 0.0
        for rows, cols in positive_components(weights):
            sub = weights[np.ix_(rows, cols)]
            decomposed_total += assignment_weight(sub, maximum_weight_assignment(sub))
        assert decomposed_total == global_total


def devices_for(num_instances, gpus_per_instance=4, prefix="inst"):
    return [
        (f"{prefix}-{i:02d}", g)
        for i in range(num_instances)
        for g in range(gpus_per_instance)
    ]


def random_fleet_state(rng, model):
    """Random meta-context state: some instances stateful, some fresh."""
    meta = MetaContextManager(model)
    n_instances = int(rng.integers(2, 9))
    devices = devices_for(n_instances)
    old = ParallelConfig(
        int(rng.choice([1, 2])),
        int(rng.choice([1, 2, 3])),
        int(rng.choice([2, 4, 8])),
        8,
    )
    positions = mesh_positions(old.data_degree, old.pipeline_degree, old.tensor_degree)
    for device, position in zip(devices, positions):
        if rng.random() < 0.8:
            meta.daemon(device).install_model_context(
                old.pipeline_degree, old.tensor_degree, position
            )
        if rng.random() < 0.4:
            meta.daemon(device).install_cache_context(
                old.pipeline_degree,
                old.tensor_degree,
                position,
                batch_size=int(rng.integers(1, 9)),
                cached_tokens=int(rng.integers(1, 700)),
            )
    return meta, devices, old


class TestWeightMatrixBitIdentity:
    @pytest.mark.parametrize("seed", range(10))
    def test_vectorized_matrix_equals_scalar_weights_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        model = GPT_20B if seed % 2 else OPT_6_7B
        meta, devices, old = random_fleet_state(rng, model)
        new = ParallelConfig(
            int(rng.choice([1, 2])),
            int(rng.choice([1, 2, 3])),
            int(rng.choice([2, 4, 8])),
            8,
        )
        inheritance = None
        if rng.random() < 0.5:
            inheritance = {
                d: int(rng.integers(0, new.data_degree))
                for d in range(old.data_degree)
            }
        mapper = DeviceMapper(model)
        positions = mesh_positions(
            new.data_degree, new.pipeline_degree, new.tensor_degree
        )
        matrix, row_of, col_of = mapper._weight_lookup(
            meta, devices, positions, new, inheritance
        )
        for device in devices:
            for position in positions:
                reference = mapper.reuse_weight(meta, device, position, new, inheritance)
                cell = float(matrix[row_of[device], col_of[position]])
                # Bitwise: exact equality *and* no -0.0 creeping in.
                assert cell == reference
                assert np.signbit(cell) == np.signbit(reference)


class TestFastPathEquivalence:
    """Randomized fleet deltas over rounds: warm fast path == cold reference."""

    @staticmethod
    def random_round(rng, meta, devices, old):
        """Apply one random fleet delta, then pick a round's inputs."""
        delta = rng.integers(0, 4)
        if delta == 0 and len({d[0] for d in devices}) > 2:
            # Preemption: drop a random instance and its contexts.
            victim = sorted({d[0] for d in devices})[
                int(rng.integers(0, len({d[0] for d in devices})))
            ]
            meta.drop_instance(victim)
            devices = [d for d in devices if d[0] != victim]
        elif delta == 1:
            # Acquisition: a fresh (stateless) instance joins.
            index = len({d[0] for d in devices}) + int(rng.integers(10, 90))
            devices = devices + devices_for(1, prefix=f"new-{index:02d}")
        # delta in (2, 3): fleet unchanged this round.
        while True:
            new = ParallelConfig(
                int(rng.choice([1, 2])),
                int(rng.choice([1, 2, 3])),
                int(rng.choice([2, 4])),
                8,
            )
            if new.num_gpus <= len(devices):
                return devices, new

    @staticmethod
    def zone_of(instance_id):
        return f"z{int(instance_id.split('-')[1]) % 3}"

    @pytest.mark.parametrize("seed", range(8))
    def test_warm_fast_path_matches_cold_each_round(self, seed):
        rng = np.random.default_rng(seed)
        model = GPT_20B if seed % 2 else OPT_6_7B
        meta, devices, old = random_fleet_state(rng, model)
        zone_of = self.zone_of if seed % 3 == 0 else None

        warm = DeviceMapper(model, zone_of=zone_of)  # fast path, warm states persist
        reference = DeviceMapper(model, zone_of=zone_of, fast_path=False)
        for round_index in range(6):
            devices, new = self.random_round(rng, meta, devices, old)
            inheritance = None
            if rng.random() < 0.5:
                inheritance = {
                    d: int(rng.integers(0, new.data_degree))
                    for d in range(old.data_degree)
                }
            # A *fresh* fast mapper is a cold solve: no warm state to seed.
            cold = DeviceMapper(model, zone_of=zone_of)
            warm_mapping = warm.map_devices(meta, devices, new, inheritance)
            cold_mapping = cold.map_devices(meta, devices, new, inheritance)
            ref_mapping = reference.map_devices(meta, devices, new, inheritance)
            # Warm vs cold: bit-identical, down to dict order.
            assert warm_mapping.placement == cold_mapping.placement
            assert list(warm_mapping.placement) == list(cold_mapping.placement)
            assert warm_mapping.reused_bytes == cold_mapping.reused_bytes
            # The hierarchical matching -- the branch that decides the golden
            # digests -- must be bit-identical between the fast and the
            # scalar reference implementation (the flat branch may tie-break
            # differently after sparsification; its total is checked below).
            positions = mesh_positions(
                new.data_degree, new.pipeline_degree, new.tensor_degree
            )
            lookup = warm._weight_lookup(meta, devices, positions, new, inheritance)
            fast_hier = warm._hierarchical_matching(
                meta, devices, positions, new, inheritance, lookup=lookup
            )
            ref_hier = reference._hierarchical_matching(
                meta, devices, positions, new, inheritance
            )
            assert fast_hier == ref_hier
            assert list(fast_hier) == list(ref_hier)
            # Reuse accounting: both flat solves are optimal matchings of the
            # same matrix, so the totals agree (up to FP summation order of
            # equal-total matchings).
            assert warm_mapping.required_bytes == ref_mapping.required_bytes
            assert warm_mapping.reused_bytes == pytest.approx(
                ref_mapping.reused_bytes, rel=1e-12, abs=1e-6
            )

    @staticmethod
    def stateful_fleet(model=GPT_20B, num_instances=6):
        meta = MetaContextManager(model)
        devices = devices_for(num_instances)
        config = ParallelConfig(2, 3, 4, 8)
        positions = mesh_positions(
            config.data_degree, config.pipeline_degree, config.tensor_degree
        )
        for device, position in zip(devices, positions):
            meta.daemon(device).install_model_context(
                config.pipeline_degree, config.tensor_degree, position
            )
        return meta, devices, config

    def test_evacuation_mode_disables_decomposition(self, monkeypatch):
        import repro.core.device_mapper as dm

        calls = []
        original = dm.positive_components

        def counting(weights):
            calls.append(weights.shape)
            return original(weights)

        monkeypatch.setattr(dm, "positive_components", counting)
        meta, devices, config = self.stateful_fleet()
        mapper = DeviceMapper(GPT_20B)
        mapper.map_devices(meta, devices, config)
        assert calls  # decomposition ran in normal mode
        calls.clear()
        mapper.evacuation_mode = True
        mapping = mapper.map_devices(meta, devices, config)
        assert not calls  # suspended during evacuation
        reference = DeviceMapper(GPT_20B, fast_path=False)
        reference.evacuation_mode = True
        assert mapping.placement == reference.map_devices(meta, devices, config).placement

    def test_decompose_flag_off_matches_reference(self):
        meta, devices, config = self.stateful_fleet(model=OPT_6_7B)
        plain = DeviceMapper(OPT_6_7B, decompose=False, warm_start=False)
        reference = DeviceMapper(OPT_6_7B, fast_path=False)
        a = plain.map_devices(meta, devices, config)
        b = reference.map_devices(meta, devices, config)
        assert a.placement == b.placement
        assert a.reused_bytes == b.reused_bytes


class TestPerfCheckMapGuard:
    """run_perf.py --check guards the map phase's ms/call per scenario."""

    @staticmethod
    def load_run_perf():
        spec = importlib.util.spec_from_file_location(
            "run_perf", REPO_ROOT / "benchmarks" / "perf" / "run_perf.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def report(map_ms, round_ms=5.0, events=50000.0):
        return {
            "adaptation_round_ms": round_ms,
            "sim_events_per_sec": events,
            "phases": {"map": {"seconds": 1.0, "calls": 10, "ms_per_call": map_ms}},
        }

    def baseline(self, tmp_path, map_ms):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "scenarios": {
                        "s": {"adaptation_round_ms": 10.0, "map_ms_per_call": map_ms}
                    }
                }
            )
        )
        return path

    def test_map_regression_fails_the_check(self, tmp_path):
        run_perf = self.load_run_perf()
        baseline = self.baseline(tmp_path, 4.0)
        # 20 ms/call vs committed 4.0 at 2x tolerance: regression.
        assert (
            run_perf.check_regression(
                {"s": self.report(map_ms=20.0)}, baseline, max_regression=2.0
            )
            == 1
        )

    def test_map_within_limit_passes(self, tmp_path):
        run_perf = self.load_run_perf()
        baseline = self.baseline(tmp_path, 4.0)
        assert (
            run_perf.check_regression(
                {"s": self.report(map_ms=7.9)}, baseline, max_regression=2.0
            )
            == 0
        )

    def test_scenario_without_map_calls_skips_the_guard(self, tmp_path):
        run_perf = self.load_run_perf()
        baseline = self.baseline(tmp_path, 4.0)
        report = self.report(map_ms=0.0)
        report["phases"] = {}
        assert run_perf.check_regression({"s": report}, baseline, 2.0) == 0
