"""Tests for the network transfer model."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.network import GB, NetworkModel, NetworkSpec, Transfer


def make_transfer(src_inst, dst_inst, size, src_gpu=0, dst_gpu=0, tag="model"):
    return Transfer(src=(src_inst, src_gpu), dst=(dst_inst, dst_gpu), size_bytes=size, tag=tag)


class TestNetworkSpec:
    def test_defaults_are_valid(self):
        spec = NetworkSpec()
        assert spec.inter_instance_bandwidth > 0
        assert spec.intra_instance_bandwidth > spec.inter_instance_bandwidth

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NetworkSpec(inter_instance_bandwidth=0)

    def test_invalid_streams_rejected(self):
        with pytest.raises(ValueError):
            NetworkSpec(concurrent_streams=0)


class TestTransferTime:
    def test_noop_transfer_is_free(self):
        model = NetworkModel()
        transfer = make_transfer("a", "a", 1 * GB, src_gpu=1, dst_gpu=1)
        assert model.transfer_time(transfer) == 0.0

    def test_intra_instance_faster_than_inter(self):
        model = NetworkModel()
        local = make_transfer("a", "a", 1 * GB, src_gpu=0, dst_gpu=1)
        remote = make_transfer("a", "b", 1 * GB)
        assert model.transfer_time(local) < model.transfer_time(remote)

    def test_time_scales_with_size(self):
        model = NetworkModel()
        small = model.transfer_time(make_transfer("a", "b", 1 * GB))
        large = model.transfer_time(make_transfer("a", "b", 4 * GB))
        assert large > small

    def test_zero_size_is_free(self):
        model = NetworkModel()
        assert model.transfer_time(make_transfer("a", "b", 0.0)) == 0.0


class TestBatchTime:
    def test_distinct_pairs_run_in_parallel(self):
        model = NetworkModel()
        single = model.batch_time([make_transfer("a", "b", 2 * GB)])
        parallel = model.batch_time(
            [make_transfer("a", "b", 2 * GB), make_transfer("c", "d", 2 * GB)]
        )
        assert parallel == pytest.approx(single)

    def test_same_pair_serialises(self):
        model = NetworkModel()
        single = model.batch_time([make_transfer("a", "b", 2 * GB)])
        double = model.batch_time(
            [make_transfer("a", "b", 2 * GB), make_transfer("a", "b", 2 * GB, src_gpu=1)]
        )
        assert double == pytest.approx(2 * single)

    def test_stream_limit_serialises_excess_pairs(self):
        spec = NetworkSpec(concurrent_streams=2)
        model = NetworkModel(spec)
        transfers = [make_transfer(f"s{i}", f"d{i}", 2 * GB) for i in range(4)]
        limited = model.batch_time(transfers)
        single = model.transfer_time(transfers[0])
        assert limited == pytest.approx(2 * single)

    def test_empty_batch_is_free(self):
        assert NetworkModel().batch_time([]) == 0.0

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.sampled_from(["a", "b", "c"]),
                st.floats(min_value=0, max_value=10 * GB),
            ),
            max_size=20,
        )
    )
    def test_batch_time_bounded_by_serial_sum(self, raw):
        model = NetworkModel()
        transfers = [make_transfer(s, d, size) for s, d, size in raw]
        batch = model.batch_time(transfers)
        serial = sum(model.transfer_time(t) for t in transfers)
        longest = max((model.transfer_time(t) for t in transfers), default=0.0)
        assert batch <= serial + 1e-9
        assert batch >= longest - 1e-9


class TestByteAccounting:
    def test_total_and_remote_bytes(self):
        model = NetworkModel()
        transfers = [
            make_transfer("a", "a", 1 * GB, dst_gpu=1),  # local
            make_transfer("a", "b", 2 * GB),  # remote
            make_transfer("a", "a", 5 * GB),  # no-op (same device)
        ]
        assert model.total_bytes(transfers) == pytest.approx(3 * GB)
        assert model.remote_bytes(transfers) == pytest.approx(2 * GB)
