"""Tests for the simulated inference pipeline (token-level decoding progress)."""

import pytest

from repro.engine.batching import Batch
from repro.engine.pipeline import InferencePipeline, PipelineAssignment
from repro.engine.placement import TopologyPosition, mesh_positions
from repro.llm.costmodel import LatencyModel
from repro.llm.spec import GPT_20B
from repro.workload.request import Request


def make_pipeline(pipeline_degree=3, tensor_degree=4, batch_size=4, pipeline_index=0):
    assignment = PipelineAssignment(
        pipeline_index=pipeline_index,
        pipeline_degree=pipeline_degree,
        tensor_degree=tensor_degree,
    )
    for position in mesh_positions(1, pipeline_degree, tensor_degree):
        actual = TopologyPosition(pipeline_index, position.stage_index, position.shard_index)
        gpu_index = position.stage_index * tensor_degree + position.shard_index
        assignment.devices[actual] = (f"inst-{gpu_index // 4}", gpu_index % 4)
    return InferencePipeline(assignment, LatencyModel(GPT_20B), batch_size)


def make_batch(size=4, output_tokens=64):
    return Batch([Request(arrival_time=0.0, output_tokens=output_tokens) for _ in range(size)])


class TestAssignment:
    def test_fully_assigned(self):
        pipeline = make_pipeline()
        assert pipeline.assignment.is_fully_assigned
        assert len(pipeline.assignment.device_ids) == 12
        assert len(pipeline.assignment.instance_ids) == 3

    def test_device_at_lookup(self):
        pipeline = make_pipeline()
        assert pipeline.assignment.device_at(0, 0) == ("inst-0", 0)
        assert pipeline.assignment.device_at(2, 3) is not None

    def test_uses_instance(self):
        pipeline = make_pipeline()
        assert pipeline.uses_instance("inst-0")
        assert not pipeline.uses_instance("inst-99")


class TestDecoding:
    def test_execution_time_matches_cost_model(self):
        pipeline = make_pipeline()
        batch = make_batch()
        model = LatencyModel(GPT_20B)
        expected = model.prefill_time(3, 4, 4, batch.input_tokens) + batch.output_tokens * model.decode_iteration_time(3, 4, 4, batch.input_tokens)
        assert pipeline.execution_time(batch) == pytest.approx(expected)

    def test_start_batch_returns_completion_time(self):
        pipeline = make_pipeline()
        batch = make_batch()
        finish = pipeline.start_batch(batch, time=10.0)
        assert finish == pytest.approx(10.0 + pipeline.execution_time(batch))
        assert pipeline.is_busy

    def test_double_start_rejected(self):
        pipeline = make_pipeline()
        pipeline.start_batch(make_batch(), time=0.0)
        with pytest.raises(RuntimeError):
            pipeline.start_batch(make_batch(), time=1.0)

    def test_tokens_decoded_by_grows_over_time(self):
        pipeline = make_pipeline()
        batch = make_batch()
        finish = pipeline.start_batch(batch, time=0.0)
        assert pipeline.tokens_decoded_by(0.0) == 0
        midway = pipeline.tokens_decoded_by(finish / 2)
        assert 0 < midway < batch.output_tokens
        assert pipeline.tokens_decoded_by(finish + 1) == batch.output_tokens

    def test_commit_progress_is_monotone(self):
        pipeline = make_pipeline()
        batch = make_batch()
        finish = pipeline.start_batch(batch, time=0.0)
        first = pipeline.commit_progress(finish / 3)
        second = pipeline.commit_progress(2 * finish / 3)
        assert first >= 0 and second >= 0
        assert batch.committed_tokens == first + second
        # Committing again at the same time adds nothing.
        assert pipeline.commit_progress(2 * finish / 3) == 0

    def test_complete_batch_finalises_requests(self):
        pipeline = make_pipeline()
        batch = make_batch()
        finish = pipeline.start_batch(batch, time=0.0)
        completed = pipeline.complete_batch(finish)
        assert completed.is_complete
        assert all(r.completion_time == finish for r in completed.requests)
        assert not pipeline.is_busy
        assert pipeline.total_batches_completed == 1
        assert pipeline.total_tokens_generated == batch.output_tokens * batch.size

    def test_complete_without_batch_rejected(self):
        with pytest.raises(RuntimeError):
            make_pipeline().complete_batch(1.0)


class TestInterruption:
    def test_interrupt_preserving_cache_commits_progress(self):
        pipeline = make_pipeline()
        batch = make_batch()
        finish = pipeline.start_batch(batch, time=0.0)
        interrupted = pipeline.interrupt(finish / 2, preserve_cache=True)
        assert interrupted is batch
        assert batch.committed_tokens > 0
        assert not pipeline.is_busy
        assert all(r.interruptions == 1 for r in batch.requests)

    def test_interrupt_without_cache_drops_progress(self):
        pipeline = make_pipeline()
        batch = make_batch()
        finish = pipeline.start_batch(batch, time=0.0)
        pipeline.interrupt(finish / 2, preserve_cache=False)
        assert batch.committed_tokens == 0
        assert all(not r.cache_preserved for r in batch.requests)

    def test_interrupt_idle_pipeline_returns_none(self):
        assert make_pipeline().interrupt(1.0) is None

    def test_resume_skips_prefill_and_committed_tokens(self):
        pipeline = make_pipeline()
        batch = make_batch()
        finish = pipeline.start_batch(batch, time=0.0)
        pipeline.interrupt(finish / 2, preserve_cache=True)
        committed = batch.committed_tokens
        assert committed > 0

        fresh_time = pipeline.execution_time(batch, resume=False)
        resume_time = pipeline.execution_time(batch, resume=True)
        assert resume_time < fresh_time
        iteration = pipeline.latency_model.decode_iteration_time(3, 4, batch.size, batch.input_tokens)
        assert resume_time == pytest.approx((batch.output_tokens - committed) * iteration)

    def test_restart_without_resume_drops_cache(self):
        pipeline = make_pipeline()
        batch = make_batch()
        finish = pipeline.start_batch(batch, time=0.0)
        pipeline.interrupt(finish / 2, preserve_cache=True)
        assert batch.committed_tokens > 0
        pipeline.start_batch(batch, time=finish, resume=False)
        assert batch.committed_tokens == 0

    def test_invalid_batch_size_rejected(self):
        assignment = PipelineAssignment(0, 1, 1)
        with pytest.raises(ValueError):
            InferencePipeline(assignment, LatencyModel(GPT_20B), 0)
