"""End-to-end test of the three-zone fluctuating-workload scenario.

Covers the ISSUE acceptance criteria: the scenario runs deterministically
end to end, the autoscaler changes the fleet size at least once, and
cross-zone migration is priced differently from intra-zone migration.
"""

import pytest

from repro.core.server import SpotServeSystem
from repro.experiments.runner import run_serving_experiment
from repro.experiments.scenarios import (
    multi_zone_fluctuating_scenario,
    three_zone_market,
)
from repro.sim.network import NetworkSpec


@pytest.fixture(scope="module")
def result():
    scenario, arrivals = multi_zone_fluctuating_scenario("OPT-6.7B", duration=600.0)
    return run_serving_experiment(
        SpotServeSystem,
        scenario.model_name,
        trace=None,
        arrival_process=arrivals,
        duration=scenario.duration,
        drain_time=300.0,
        options=scenario.options(),
        zones=scenario.zones,
        allow_spot_requests=True,
    )


class TestThreeZoneScenario:
    def test_zones_have_distinct_character(self):
        zones = three_zone_market()
        names = [zone.name for zone in zones]
        assert len(set(names)) == 3
        prices = {zone.name: zone.spot_pricing.price_at(0.0) for zone in zones}
        assert len(set(prices.values())) == 3
        # The cheap zone spikes mid-run (the capacity-crunch event).
        cheap = min(prices, key=prices.get)
        spiking = next(zone for zone in zones if zone.name == cheap)
        assert not spiking.spot_pricing.is_flat

    def test_serves_the_workload(self, result):
        assert result.submitted_requests > 100
        assert result.completion_ratio > 0.95

    def test_autoscaler_changes_fleet_size(self, result):
        actions = result.stats.autoscale_actions
        assert len(actions) >= 1
        assert any(action.delta != 0 for action in actions)
        # Growth is arbitraged into actual zone acquisitions.
        acquired = sum(sum(a.acquired.values()) for a in actions)
        assert acquired >= 1

    def test_cost_is_split_across_zones(self, result):
        costs = result.cost_by_zone
        assert set(costs) == {"us-east-1a", "us-east-1b", "us-west-2a"}
        assert all(cost > 0 for cost in costs.values())
        assert result.total_cost == pytest.approx(sum(costs.values()))

    def test_reconfigurations_happened_under_preemption(self, result):
        assert result.stats.preemption_notices >= 1
        assert len(result.stats.reconfigurations) >= 1

    def test_cross_zone_migration_priced_differently(self):
        spec = NetworkSpec()
        assert spec.cross_zone_bandwidth < spec.inter_instance_bandwidth
        assert spec.cross_zone_latency > spec.per_transfer_latency
