"""Vectorized propose sweep: bit-identity against the scalar reference.

The PR-5 fast path batches Algorithm 1's per-config cost evaluation
(request latency, the sustaining filter, the near-tie thresholds) into
whole-array numpy expressions.  None of that may change a single decision:
this suite cross-checks the vectorized controller against the scalar
reference loop over randomized fleets, growth budgets and arrival rates --
same winning config, same objective, same instance delta, and the winning
estimate's floats equal bit for bit -- plus the memo/invalidaton contract
the controller's other caches already obey.
"""

import random

import pytest

from repro.core.config import ConfigurationSpace
from repro.core.controller import (
    VECTOR_SWEEP_MIN_CONFIGS,
    ParallelizationController,
)
from repro.llm.costmodel import LatencyModel
from repro.llm.memory import MemoryModel
from repro.llm.profiler import OfflineProfiler
from repro.llm.spec import get_model

MODELS = ("OPT-6.7B", "GPT-20B")


def make_controller(model_name, vectorize, **kwargs):
    model = get_model(model_name)
    latency_model = LatencyModel(model)
    memory_model = MemoryModel(model)
    space = ConfigurationSpace(model, memory_model)
    profiler = OfflineProfiler(latency_model, memory_model)
    return ParallelizationController(space, profiler, vectorize=vectorize, **kwargs)


def assert_same_decision(a, b, context=""):
    if a is None or b is None:
        assert a is None and b is None, f"feasibility mismatch {context}"
        return
    assert a.config == b.config, context
    assert a.objective == b.objective, context
    assert a.instance_delta == b.instance_delta, context
    # Bit-identical floats, not approx: the digest contract depends on it.
    assert a.estimate.request_latency == b.estimate.request_latency, context
    assert a.estimate.execution_latency == b.estimate.execution_latency, context
    assert a.estimate.throughput == b.estimate.throughput, context
    assert a.estimate.num_instances == b.estimate.num_instances, context


class TestVectorizedMatchesScalar:
    @pytest.mark.parametrize("model_name", MODELS)
    def test_randomized_fleets_and_rates(self, model_name):
        vectorized = make_controller(model_name, vectorize=True)
        scalar = make_controller(model_name, vectorize=False)
        rng = random.Random(hash(model_name) & 0xFFFF)
        for trial in range(150):
            available = rng.randint(1, 40)
            extra = rng.choice([0, 0, 0, 2, 4, 8])
            rate = rng.choice(
                [
                    0.0,
                    1e-3,
                    rng.uniform(0.01, 1.0),
                    rng.uniform(1.0, 30.0),
                    rng.uniform(30.0, 300.0),
                ]
            )
            a = vectorized.propose(available, rate, max_instances=available + extra)
            b = scalar.propose(available, rate, max_instances=available + extra)
            assert_same_decision(
                a, b, f"model={model_name} N={available}+{extra} rate={rate}"
            )

    def test_slo_filter_matches(self):
        for slo in (5.0, 12.0, 60.0):
            vectorized = make_controller("OPT-6.7B", vectorize=True, slo_latency=slo)
            scalar = make_controller("OPT-6.7B", vectorize=False, slo_latency=slo)
            rng = random.Random(int(slo))
            for _ in range(40):
                available = rng.randint(1, 36)
                rate = rng.uniform(0.01, 20.0)
                assert_same_decision(
                    vectorized.propose(available, rate),
                    scalar.propose(available, rate),
                    f"slo={slo} N={available} rate={rate}",
                )

    def test_memoize_disabled_still_matches(self):
        vectorized = make_controller("OPT-6.7B", vectorize=True, memoize=False)
        scalar = make_controller("OPT-6.7B", vectorize=False, memoize=False)
        for available, rate in [(36, 4.2), (36, 4.2), (12, 0.7), (3, 19.0)]:
            assert_same_decision(
                vectorized.propose(available, rate),
                scalar.propose(available, rate),
                f"N={available} rate={rate}",
            )

    def test_zero_fleet_is_infeasible_on_both_paths(self):
        vectorized = make_controller("OPT-6.7B", vectorize=True)
        scalar = make_controller("OPT-6.7B", vectorize=False)
        assert vectorized.propose(0, 1.0) is None
        assert scalar.propose(0, 1.0) is None


class TestVectorPathEngages:
    def test_large_fleet_uses_the_vector_cache(self):
        controller = make_controller("OPT-6.7B", vectorize=True)
        fleet = 36
        assert (
            len(controller.config_space.feasible_configs(fleet))
            >= VECTOR_SWEEP_MIN_CONFIGS
        )
        controller.propose(fleet, 3.0)
        assert fleet in controller._vector_memo

    def test_small_space_falls_back_to_scalar(self):
        controller = make_controller("OPT-6.7B", vectorize=True)
        fleet = 1
        assert (
            len(controller.config_space.feasible_configs(fleet))
            < VECTOR_SWEEP_MIN_CONFIGS
        )
        decision = controller.propose(fleet, 0.2)
        assert decision is not None
        assert fleet not in controller._vector_memo

    def test_propose_memo_hits_within_a_round(self):
        controller = make_controller("OPT-6.7B", vectorize=True)
        first = controller.propose(36, 3.0, max_instances=40)
        again = controller.propose(36, 3.0, max_instances=40)
        assert again is first  # same frozen decision object from the memo


class TestInvalidation:
    def test_space_mutation_drops_vector_and_propose_memos(self):
        controller = make_controller("OPT-6.7B", vectorize=True)
        before = controller.propose(36, 3.0)
        assert controller._vector_memo and controller._propose_memo
        # Shrinking the feasible space (larger reserved migration buffer)
        # must invalidate: the old winner may no longer fit.
        controller.config_space.migration_buffer_bytes = 2e9
        after = controller.propose(36, 3.0)
        assert controller.config_space.fits(after.config)
        scalar = make_controller("OPT-6.7B", vectorize=False)
        scalar.config_space.migration_buffer_bytes = 2e9
        assert_same_decision(after, scalar.propose(36, 3.0), "post-invalidation")
        assert before is not after

    def test_profiler_clear_invalidates(self):
        controller = make_controller("OPT-6.7B", vectorize=True)
        controller.propose(36, 3.0)
        assert controller._vector_memo
        controller.profiler.clear()
        controller.propose(36, 3.0)
        # The memos were rebuilt against the new generation, not reused.
        assert controller._profiler_generation == controller.profiler.generation
