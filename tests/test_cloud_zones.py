"""Tests for the multi-zone spot market: zones, price schedules, provider."""

import pytest

from repro.cloud.instance import DEFAULT_ZONE, G4DN_12XLARGE, Market
from repro.cloud.manager import InstanceManager
from repro.cloud.pricing import PriceSchedule
from repro.cloud.provider import CloudProvider
from repro.cloud.trace import AvailabilityTrace, TraceEvent, TraceEventKind
from repro.cloud.zone import ZoneSpec, single_zone, validate_zones
from repro.sim.engine import Simulator
from repro.sim.events import EventType
from repro.sim.network import NetworkModel, NetworkSpec, Transfer


def make_trace(name="z", initial=2, events=(), duration=600.0):
    return AvailabilityTrace(
        name=name, initial_instances=initial, events=list(events), duration=duration
    )


def three_zones():
    return [
        ZoneSpec(
            name="alpha",
            trace=make_trace("a", initial=2, events=[TraceEvent(100.0, TraceEventKind.PREEMPT, 1)]),
            capacity=4,
            spot_pricing=PriceSchedule(base_price=1.0, changes=((200.0, 3.0),)),
        ),
        ZoneSpec(name="beta", trace=make_trace("b", initial=2), capacity=3,
                 spot_pricing=PriceSchedule.flat(1.5)),
        ZoneSpec(name="gamma", trace=make_trace("c", initial=1), capacity=2,
                 spot_pricing=PriceSchedule.flat(2.5)),
    ]


class TestPriceSchedule:
    def test_flat_schedule(self):
        schedule = PriceSchedule.flat(1.9)
        assert schedule.is_flat
        assert schedule.price_at(0.0) == 1.9
        assert schedule.price_at(1e6) == 1.9

    def test_price_changes_apply_from_their_timestamp(self):
        schedule = PriceSchedule(base_price=1.0, changes=((100.0, 2.0), (200.0, 0.5)))
        assert schedule.price_at(99.9) == 1.0
        assert schedule.price_at(100.0) == 2.0
        assert schedule.price_at(250.0) == 0.5

    def test_changes_are_sorted(self):
        schedule = PriceSchedule(base_price=1.0, changes=((200.0, 0.5), (100.0, 2.0)))
        assert schedule.price_at(150.0) == 2.0

    def test_cost_between_integrates_pieces(self):
        schedule = PriceSchedule(base_price=1.0, changes=((1800.0, 3.0),))
        # Half an hour at $1/h plus half an hour at $3/h.
        assert schedule.cost_between(0.0, 3600.0) == pytest.approx(2.0)

    def test_cost_between_empty_interval(self):
        schedule = PriceSchedule.flat(2.0)
        assert schedule.cost_between(50.0, 50.0) == 0.0
        assert schedule.cost_between(60.0, 50.0) == 0.0

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            PriceSchedule(base_price=-1.0)
        with pytest.raises(ValueError):
            PriceSchedule(base_price=1.0, changes=((10.0, -2.0),))


class TestZoneSpec:
    def test_capacity_must_cover_initial_fleet(self):
        with pytest.raises(ValueError):
            ZoneSpec(name="tiny", trace=make_trace(initial=5), capacity=3)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ZoneSpec(name="", trace=make_trace())

    def test_default_schedules_use_instance_type_prices(self):
        zone = ZoneSpec(name="z", trace=make_trace())
        assert zone.spot_schedule(G4DN_12XLARGE).price_at(0.0) == pytest.approx(1.9)
        assert zone.on_demand_schedule(G4DN_12XLARGE).price_at(0.0) == pytest.approx(3.9)

    def test_validate_rejects_duplicates_and_empty(self):
        zone = ZoneSpec(name="z", trace=make_trace())
        with pytest.raises(ValueError):
            validate_zones([zone, zone])
        with pytest.raises(ValueError):
            validate_zones([])

    def test_single_zone_wraps_trace(self):
        zones = single_zone(make_trace())
        assert len(zones) == 1
        assert zones[0].name == DEFAULT_ZONE
        assert zones[0].capacity is None


class TestMultiZoneProvider:
    def test_initial_fleet_spans_zones(self):
        sim = Simulator()
        provider = CloudProvider(sim, zones=three_zones())
        assert len(provider.usable_instances()) == 5
        assert provider.alive_in_zone("alpha") == 2
        assert provider.alive_in_zone("beta") == 2
        assert provider.alive_in_zone("gamma") == 1

    def test_zone_and_trace_are_mutually_exclusive(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CloudProvider(sim, make_trace(), zones=three_zones())
        with pytest.raises(ValueError):
            CloudProvider(sim)

    def test_instances_carry_zone_identity(self):
        sim = Simulator()
        provider = CloudProvider(sim, zones=three_zones())
        zones = {provider.zone_of(inst.instance_id) for inst in provider.instances}
        assert zones == {"alpha", "beta", "gamma"}
        for inst in provider.instances_in_zone("alpha"):
            assert inst.zone == "alpha"
            assert inst.instance_id.startswith("alpha-")

    def test_preemptions_stay_in_their_zone(self):
        sim = Simulator()
        provider = CloudProvider(sim, zones=three_zones())
        preempted = []
        sim.on(
            EventType.PREEMPTION_NOTICE,
            lambda e: preempted.append(e.payload["instance"]),
        )
        sim.run(until=200.0)
        assert len(preempted) == 1
        assert preempted[0].zone == "alpha"
        assert provider.alive_in_zone("beta") == 2

    def test_targeted_on_demand_allocation(self):
        sim = Simulator()
        provider = CloudProvider(sim, zones=three_zones())
        granted = provider.request_on_demand(1, zone="gamma")
        assert len(granted) == 1
        assert granted[0].zone == "gamma"
        with pytest.raises(KeyError):
            provider.request_on_demand(1, zone="nonexistent")

    def test_capacity_limits_allocation(self):
        sim = Simulator()
        provider = CloudProvider(sim, zones=three_zones(), allow_spot_requests=True)
        # gamma holds 1/2 instances: only one more fits.
        granted = provider.request_spot(5, zone="gamma")
        assert len(granted) == 1
        assert provider.capacity_remaining("gamma") == 0
        assert provider.request_spot(1, zone="gamma") == []

    def test_untargeted_allocation_spills_across_zones(self):
        sim = Simulator()
        provider = CloudProvider(sim, zones=three_zones(), allow_spot_requests=True)
        # Room: alpha 2, beta 1, gamma 1.
        granted = provider.request_spot(4)
        assert len(granted) == 4
        assert sorted({inst.zone for inst in granted}) == ["alpha", "beta", "gamma"]

    def test_trace_acquire_respects_capacity(self):
        sim = Simulator()
        zone = ZoneSpec(
            name="tight",
            trace=make_trace(
                "t", initial=2, events=[TraceEvent(50.0, TraceEventKind.ACQUIRE, 5)]
            ),
            capacity=3,
        )
        provider = CloudProvider(sim, zones=[zone])
        sim.run(until=100.0)
        assert provider.alive_in_zone("tight") == 3

    def test_zone_prices_feed_cost_tracker(self):
        sim = Simulator()
        provider = CloudProvider(sim, zones=three_zones())
        sim.run(until=3600.0)
        costs = provider.cost_tracker.cost_by_zone(3600.0)
        # alpha: 2 instances, $1/h for 200s then $3/h (one preempted at
        # 100s+grace); beta: 2 instances at $1.5/h; gamma: 1 at $2.5/h.
        assert costs["beta"] == pytest.approx(2 * 1.5)
        assert costs["gamma"] == pytest.approx(2.5)
        assert costs["alpha"] > 2.0  # the $3/h spike dominates the flat rate
        assert provider.spot_price("alpha", 300.0) == 3.0
        assert provider.spot_price("alpha", 100.0) == 1.0

    def test_victim_selection_deterministic_per_zone(self):
        def run_once():
            sim = Simulator()
            provider = CloudProvider(sim, zones=three_zones(), victim_seed=3)
            picked = []
            sim.on(
                EventType.PREEMPTION_NOTICE,
                lambda e: picked.append(e.payload["instance"].zone),
            )
            sim.run(until=200.0)
            fleet = sorted(i.instance_id for i in provider.instances_in_zone("alpha"))
            return picked, len(fleet)

        assert run_once() == run_once()


class TestZoneAwareManager:
    def _manager(self):
        sim = Simulator()
        provider = CloudProvider(sim, zones=three_zones(), allow_spot_requests=True)
        manager = InstanceManager(provider, candidate_pool_size=0)
        manager.adopt_initial_fleet()
        return sim, provider, manager

    def test_zone_counts(self):
        _, _, manager = self._manager()
        assert manager.zone_counts() == {"alpha": 2, "beta": 2, "gamma": 1}

    def test_zone_targeted_free(self):
        _, _, manager = self._manager()
        released = manager.free(1, zone="beta", keep_pool=False)
        assert len(released) == 1
        assert released[0].zone == "beta"
        assert manager.zone_counts()["beta"] == 1

    def test_free_respects_avoid_list(self):
        _, _, manager = self._manager()
        protected = [inst.instance_id for inst in manager.stable_instances()]
        assert manager.free(3, keep_pool=False, avoid=protected) == []

    def test_zone_targeted_alloc(self):
        sim, provider, manager = self._manager()
        granted = manager.alloc(1, zone="beta")
        assert len(granted) == 1
        assert granted[0].zone == "beta"


class TestCrossZoneNetwork:
    def _model(self):
        zones = {"a-0": "east", "a-1": "east", "b-0": "west"}
        return NetworkModel(zone_of=lambda inst: zones.get(inst, "east"))

    def test_cross_zone_transfers_are_slower(self):
        model = self._model()
        size = 1024 ** 3
        intra = model.transfer_time(Transfer(("a-0", 0), ("a-0", 1), size))
        inter = model.transfer_time(Transfer(("a-0", 0), ("a-1", 0), size))
        cross = model.transfer_time(Transfer(("a-0", 0), ("b-0", 0), size))
        assert intra < inter < cross

    def test_is_cross_zone(self):
        model = self._model()
        assert model.is_cross_zone(Transfer(("a-0", 0), ("b-0", 0), 1.0))
        assert not model.is_cross_zone(Transfer(("a-0", 0), ("a-1", 0), 1.0))
        # Local transfers never count as cross-zone.
        assert not model.is_cross_zone(Transfer(("a-0", 0), ("a-0", 1), 1.0))

    def test_cross_zone_bytes(self):
        model = self._model()
        transfers = [
            Transfer(("a-0", 0), ("b-0", 0), 100.0),
            Transfer(("a-0", 0), ("a-1", 0), 50.0),
        ]
        assert model.cross_zone_bytes(transfers) == pytest.approx(100.0)
        assert model.remote_bytes(transfers) == pytest.approx(150.0)

    def test_without_topology_everything_is_one_zone(self):
        model = NetworkModel()
        assert not model.is_cross_zone(Transfer(("a-0", 0), ("b-0", 0), 1.0))

    def test_invalid_cross_zone_spec_rejected(self):
        with pytest.raises(ValueError):
            NetworkSpec(cross_zone_bandwidth=0.0)
        with pytest.raises(ValueError):
            NetworkSpec(cross_zone_latency=-1.0)
