"""Tests for the analytic latency/throughput cost model and offline profiler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.llm.costmodel import (
    DEFAULT_INPUT_LENGTH,
    DEFAULT_OUTPUT_LENGTH,
    TABLE1_REFERENCE,
    CostModelParams,
    LatencyModel,
)
from repro.llm.memory import MemoryModel
from repro.llm.profiler import OfflineProfiler
from repro.llm.spec import GPT_20B, OPT_6_7B, get_model


class TestCalibration:
    @pytest.mark.parametrize("name", sorted(TABLE1_REFERENCE))
    def test_reference_latency_reproduced_exactly(self, name):
        """Table 1's l_exe(B=1) numbers are reproduced at the reference configs."""
        (p, m), target = TABLE1_REFERENCE[name]
        model = LatencyModel(name)
        assert model.l_exe(p, m, 1) == pytest.approx(target, rel=1e-6)

    def test_calibration_factor_is_moderate(self):
        """The analytic model should be in the right ballpark before calibration."""
        for name in TABLE1_REFERENCE:
            factor = LatencyModel(name).calibration_factor
            assert 0.3 < factor < 3.0

    def test_uncalibrated_model_has_unit_factor(self):
        model = LatencyModel(GPT_20B, calibrate=False)
        assert model.calibration_factor == 1.0


class TestLatencyStructure:
    def test_latency_increases_with_output_length(self):
        model = LatencyModel(GPT_20B)
        assert model.l_exe(3, 4, 1, output_length=256) > model.l_exe(3, 4, 1, output_length=64)

    def test_latency_increases_with_batch_size(self):
        model = LatencyModel(GPT_20B)
        assert model.l_exe(3, 4, 8) > model.l_exe(3, 4, 1)

    def test_batch8_latency_well_below_8x(self):
        """Batching amortises weight streaming: 8x the requests must cost far
        less than 8x the latency (this is what makes large batches raise
        throughput)."""
        model = LatencyModel(GPT_20B)
        assert model.l_exe(3, 4, 8) < 4.0 * model.l_exe(3, 4, 1)

    def test_eq1_decomposition(self):
        """l_exe ~= prefill + S_out * t_exe(1) (Eq. 2)."""
        model = LatencyModel(OPT_6_7B)
        p, m, b = 1, 4, 1
        approx = model.prefill_time(p, m, b) + DEFAULT_OUTPUT_LENGTH * model.decode_iteration_time(p, m, b)
        assert model.l_exe(p, m, b) == pytest.approx(approx, rel=0.1)

    def test_oversharding_penalised(self):
        """Spanning instances with tensor parallelism (M=8 on 4-GPU boxes)
        must pay more collective latency than M=4 at the same GPU count."""
        model = LatencyModel(GPT_20B)
        per_iter_m8 = model.decode_iteration_time(2, 8, 1)
        per_iter_m4 = model.decode_iteration_time(4, 4, 1)
        assert per_iter_m8 > per_iter_m4

    def test_more_gpus_reduce_iteration_time(self):
        model = LatencyModel(GPT_20B)
        assert model.decode_iteration_time(2, 4, 1) < model.decode_iteration_time(4, 2, 1) * 1.01
        assert model.decode_iteration_time(1, 4, 1) < model.decode_iteration_time(2, 2, 1) * 1.01

    def test_partial_decode_time_linear(self):
        model = LatencyModel(GPT_20B)
        ten = model.partial_decode_time(10, 3, 4, 1)
        twenty = model.partial_decode_time(20, 3, 4, 1)
        assert twenty == pytest.approx(2 * ten, rel=0.05)

    def test_partial_decode_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyModel(GPT_20B).partial_decode_time(-1, 3, 4, 1)

    def test_invalid_parallelism_rejected(self):
        model = LatencyModel(GPT_20B)
        with pytest.raises(ValueError):
            model.l_exe(0, 4, 1)
        with pytest.raises(ValueError):
            model.l_exe(3, 4, 0)

    @given(
        p=st.sampled_from([1, 2, 3, 4]),
        m=st.sampled_from([1, 2, 4, 8]),
        b=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_latencies_are_positive_and_finite(self, p, m, b):
        model = LatencyModel(GPT_20B)
        latency = model.l_exe(p, m, b)
        assert 0 < latency < 10_000


class TestThroughput:
    def test_throughput_scales_linearly_with_data_parallelism(self):
        model = LatencyModel(GPT_20B)
        one = model.throughput(1, 2, 8, 8)
        three = model.throughput(3, 2, 8, 8)
        assert three == pytest.approx(3 * one)

    def test_single_pipeline_overloads_at_paper_rate(self):
        """The Figure 6 narrative: one (2, 8) pipeline cannot sustain the
        0.35 req/s GPT-20B arrival rate, two can."""
        model = LatencyModel(GPT_20B)
        assert model.throughput(1, 2, 8, 8) < 0.35
        assert model.throughput(2, 2, 8, 8) >= 0.35

    def test_llama_pipeline_capacity(self):
        """One LLaMA-30B pipeline is marginal at 0.2 req/s; two are comfortable."""
        model = LatencyModel("LLaMA-30B")
        assert 0.1 < model.throughput(1, 2, 8, 8) < 0.35
        assert model.throughput(2, 2, 8, 8) >= 1.5 * 0.2

    def test_opt_pipeline_capacity(self):
        """A handful of OPT-6.7B pipelines cover 1.5 req/s."""
        model = LatencyModel("OPT-6.7B")
        per_pipeline = model.throughput(1, 1, 4, 8)
        assert per_pipeline > 0.3
        assert 3 * per_pipeline >= 1.5

    def test_invalid_data_degree_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(GPT_20B).throughput(0, 2, 8, 8)


class TestCostModelParams:
    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            CostModelParams(memory_efficiency=0.0)
        with pytest.raises(ValueError):
            CostModelParams(decode_compute_efficiency=1.5)

    def test_invalid_gpus_per_instance_rejected(self):
        with pytest.raises(ValueError):
            CostModelParams(gpus_per_instance=0)


class TestOfflineProfiler:
    def test_profile_is_cached(self):
        profiler = OfflineProfiler(LatencyModel(GPT_20B))
        first = profiler.profile(2, 3, 4, 8)
        second = profiler.profile(2, 3, 4, 8)
        assert first is second

    def test_sweep_only_returns_memory_feasible_entries(self):
        latency_model = LatencyModel(GPT_20B)
        profiler = OfflineProfiler(latency_model, MemoryModel(GPT_20B))
        entries = profiler.sweep(max_gpus=16)
        assert entries
        assert all(entry.fits_memory for entry in entries)
        assert all(entry.num_gpus <= 16 for entry in entries)

    def test_sweep_respects_head_divisibility(self):
        profiler = OfflineProfiler(LatencyModel(GPT_20B))
        entries = profiler.sweep(max_gpus=16)
        assert all(GPT_20B.num_heads % entry.tensor_degree == 0 for entry in entries)

    def test_entry_key_roundtrip(self):
        profiler = OfflineProfiler(LatencyModel(GPT_20B))
        entry = profiler.profile(1, 3, 4, 2)
        assert entry.key == (1, 3, 4, 2)
        assert entry.num_gpus == 12

    def test_clear_empties_cache(self):
        profiler = OfflineProfiler(LatencyModel(GPT_20B))
        profiler.profile(1, 3, 4, 2)
        profiler.clear()
        assert profiler.cached_entries() == []

    def test_invalid_sweep_rejected(self):
        with pytest.raises(ValueError):
            OfflineProfiler(LatencyModel(GPT_20B)).sweep(max_gpus=0)
