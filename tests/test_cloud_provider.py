"""Tests for the simulated cloud provider, instance manager and cost tracker."""

import pytest

from repro.cloud.instance import G4DN_12XLARGE, Instance, Market
from repro.cloud.manager import InstanceManager
from repro.cloud.pricing import CostTracker
from repro.cloud.provider import CloudProvider
from repro.cloud.trace import AvailabilityTrace, TraceEvent, TraceEventKind
from repro.sim.engine import Simulator
from repro.sim.events import EventType


def small_trace():
    return AvailabilityTrace(
        name="small",
        initial_instances=3,
        events=[
            TraceEvent(100.0, TraceEventKind.PREEMPT, 1),
            TraceEvent(300.0, TraceEventKind.ACQUIRE, 1),
        ],
        duration=600.0,
    )


class TestCloudProvider:
    def test_initial_fleet_is_ready_at_time_zero(self):
        sim = Simulator()
        provider = CloudProvider(sim, small_trace())
        assert len(provider.usable_instances()) == 3

    def test_initial_fleet_does_not_emit_acquisition_events(self):
        sim = Simulator()
        seen = []
        sim.on(EventType.ACQUISITION_READY, lambda e: seen.append(e))
        CloudProvider(sim, small_trace())
        sim.run(until=50.0)
        assert seen == []

    def test_preemption_notice_then_final_after_grace(self):
        sim = Simulator()
        notices, finals = [], []
        sim.on(EventType.PREEMPTION_NOTICE, lambda e: notices.append(e))
        sim.on(EventType.PREEMPTION_FINAL, lambda e: finals.append(e))
        provider = CloudProvider(sim, small_trace())
        sim.run(until=200.0)
        assert len(notices) == 1
        assert len(finals) == 1
        assert notices[0].time == pytest.approx(100.0)
        assert finals[0].time == pytest.approx(100.0 + G4DN_12XLARGE.grace_period)
        assert notices[0].payload["deadline"] == pytest.approx(finals[0].time)
        assert provider.preempted_count == 1
        assert len(provider.usable_instances()) == 2

    def test_trace_acquisition_announces_instance(self):
        sim = Simulator()
        acquired = []
        sim.on(EventType.ACQUISITION_READY, lambda e: acquired.append(e.payload["instance"]))
        provider = CloudProvider(sim, small_trace())
        sim.run(until=400.0)
        assert len(acquired) == 1
        assert acquired[0].is_usable
        assert len(provider.usable_instances()) == 3

    def test_on_demand_request_ready_after_startup_delay(self):
        sim = Simulator()
        ready = []
        sim.on(EventType.ACQUISITION_READY, lambda e: ready.append(e))
        provider = CloudProvider(sim, small_trace())
        granted = provider.request_on_demand(2)
        assert len(granted) == 2
        assert all(inst.market is Market.ON_DEMAND for inst in granted)
        sim.run(until=G4DN_12XLARGE.startup_delay + 1)
        assert len(ready) == 2
        assert all(event.payload["instance"].is_usable for event in ready)

    def test_spot_requests_disabled_by_default(self):
        sim = Simulator()
        provider = CloudProvider(sim, small_trace())
        assert provider.request_spot(3) == []

    def test_spot_requests_when_enabled(self):
        sim = Simulator()
        provider = CloudProvider(sim, small_trace(), allow_spot_requests=True)
        granted = provider.request_spot(2)
        assert len(granted) == 2

    def test_release_stops_billing(self):
        sim = Simulator()
        provider = CloudProvider(sim, small_trace())
        instance = provider.usable_instances()[0]
        provider.release(instance)
        assert not instance.is_alive
        # Releasing twice is a silent no-op.
        provider.release(instance)

    def test_victim_selection_is_seed_deterministic(self):
        def victims(seed):
            sim = Simulator()
            provider = CloudProvider(sim, small_trace(), victim_seed=seed)
            preempted = []
            sim.on(
                EventType.PREEMPTION_NOTICE,
                lambda e: preempted.append(e.payload["instance"].instance_id),
            )
            sim.run(until=200.0)
            # Normalise: ids are globally unique, compare by index in fleet.
            fleet = sorted(inst.instance_id for inst in provider.instances)
            return [fleet.index(v) for v in preempted]

        assert victims(1) == victims(1)

    def test_on_demand_trace_market(self):
        sim = Simulator()
        provider = CloudProvider(sim, small_trace(), trace_market=Market.ON_DEMAND)
        assert all(inst.market is Market.ON_DEMAND for inst in provider.instances)


class TestCostTracker:
    def test_cost_accrues_per_hour(self):
        tracker = CostTracker()
        instance = Instance(instance_type=G4DN_12XLARGE, market=Market.SPOT, launch_time=0.0)
        tracker.start_billing(instance, 0.0)
        assert tracker.total_cost(3600.0) == pytest.approx(1.9)
        tracker.stop_billing(instance, 3600.0)
        assert tracker.total_cost(7200.0) == pytest.approx(1.9)

    def test_market_breakdown(self):
        tracker = CostTracker()
        spot = Instance(instance_type=G4DN_12XLARGE, market=Market.SPOT, launch_time=0.0)
        od = Instance(instance_type=G4DN_12XLARGE, market=Market.ON_DEMAND, launch_time=0.0)
        tracker.start_billing(spot, 0.0)
        tracker.start_billing(od, 0.0)
        assert tracker.total_cost(3600.0, Market.SPOT) == pytest.approx(1.9)
        assert tracker.total_cost(3600.0, Market.ON_DEMAND) == pytest.approx(3.9)
        assert tracker.instance_hours(3600.0) == pytest.approx(2.0)

    def test_double_billing_rejected(self):
        tracker = CostTracker()
        instance = Instance(instance_type=G4DN_12XLARGE, market=Market.SPOT, launch_time=0.0)
        tracker.start_billing(instance, 0.0)
        with pytest.raises(ValueError):
            tracker.start_billing(instance, 10.0)

    def test_cost_per_token(self):
        tracker = CostTracker()
        instance = Instance(instance_type=G4DN_12XLARGE, market=Market.SPOT, launch_time=0.0)
        tracker.start_billing(instance, 0.0)
        assert tracker.cost_per_token(3600.0, 0) == float("inf")
        assert tracker.cost_per_token(3600.0, 1000) == pytest.approx(1.9 / 1000)

    def test_stop_billing_unknown_instance_is_noop(self):
        tracker = CostTracker()
        instance = Instance(instance_type=G4DN_12XLARGE, market=Market.SPOT, launch_time=0.0)
        tracker.stop_billing(instance, 10.0)
        assert tracker.total_cost(3600.0) == 0.0


class TestInstanceManager:
    def _provider(self, allow_on_demand=True):
        sim = Simulator()
        provider = CloudProvider(sim, small_trace())
        manager = InstanceManager(provider, allow_on_demand=allow_on_demand, candidate_pool_size=1)
        manager.adopt_initial_fleet()
        return sim, provider, manager

    def test_adopt_initial_fleet(self):
        _, _, manager = self._provider()
        assert manager.available_count() == 3
        assert manager.available_gpus() == 12

    def test_preemption_notice_excludes_instance_from_stable_set(self):
        sim, provider, manager = self._provider()
        sim.on(EventType.PREEMPTION_NOTICE, manager.on_preemption_notice)
        sim.on(EventType.PREEMPTION_FINAL, manager.on_preemption_final)
        sim.run(until=110.0)
        assert manager.available_count() == 2
        assert len(manager.doomed_instances()) == 1
        sim.run(until=200.0)
        assert manager.available_count() == 2
        assert manager.doomed_instances() == []

    def test_alloc_uses_on_demand_when_spot_unavailable(self):
        _, _, manager = self._provider(allow_on_demand=True)
        granted = manager.alloc(2)
        assert len(granted) == 2
        assert all(inst.market is Market.ON_DEMAND for inst in granted)

    def test_alloc_spot_only_returns_nothing_without_capacity(self):
        _, _, manager = self._provider(allow_on_demand=False)
        assert manager.alloc(2) == []

    def test_free_keeps_candidate_pool(self):
        _, _, manager = self._provider()
        released = manager.free(2)
        # Pool size 1 means only one of the two requested releases happens.
        assert len(released) == 1
        assert manager.available_count() == 2

    def test_free_releases_on_demand_first(self):
        sim, provider, manager = self._provider()
        sim.on(EventType.ACQUISITION_READY, manager.on_acquisition_ready)
        manager.alloc(1)
        sim.run(until=G4DN_12XLARGE.startup_delay + 1)
        assert len(manager.on_demand_instances()) == 1
        released = manager.free(2)
        assert released
        assert released[0].market is Market.ON_DEMAND
