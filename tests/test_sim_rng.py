"""Tests for the deterministic named random streams."""

from repro.sim.rng import RandomStreams, _derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert _derive_seed(0, "arrivals") == _derive_seed(0, "arrivals")

    def test_differs_by_name(self):
        assert _derive_seed(0, "arrivals") != _derive_seed(0, "preemptions")

    def test_differs_by_base_seed(self):
        assert _derive_seed(0, "arrivals") != _derive_seed(1, "arrivals")

    def test_fits_in_64_bits(self):
        assert 0 <= _derive_seed(123, "x") < 2 ** 64


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_independent_of_creation_order(self):
        # Drawing from one stream must never perturb another: the sequences
        # only depend on (base_seed, name).
        first = RandomStreams(7)
        a_then_b = (
            first.stream("a").random(3).tolist(),
            first.stream("b").random(3).tolist(),
        )
        second = RandomStreams(7)
        b_then_a = (
            second.stream("b").random(3).tolist(),
            second.stream("a").random(3).tolist(),
        )
        assert a_then_b[0] == b_then_a[1]
        assert a_then_b[1] == b_then_a[0]

    def test_different_base_seeds_give_different_draws(self):
        a = RandomStreams(0).stream("x").random(4).tolist()
        b = RandomStreams(1).stream("x").random(4).tolist()
        assert a != b

    def test_reset_replays_sequences(self):
        streams = RandomStreams(3)
        before = streams.stream("w").random(5).tolist()
        streams.reset()
        after = streams.stream("w").random(5).tolist()
        assert before == after

    def test_spawn_derives_child_registry(self):
        parent = RandomStreams(5)
        child_a = parent.spawn("worker")
        child_b = parent.spawn("worker")
        assert child_a.base_seed == child_b.base_seed
        assert child_a.base_seed != parent.base_seed
        draws_a = child_a.stream("s").random(3).tolist()
        draws_b = child_b.stream("s").random(3).tolist()
        assert draws_a == draws_b

    def test_spawn_different_names_diverge(self):
        parent = RandomStreams(5)
        assert parent.spawn("alpha").base_seed != parent.spawn("beta").base_seed
