#!/usr/bin/env python
"""Documentation quality gate: markdown link check + docstring coverage.

Two checks, both dependency-free (stdlib only) so they run identically in
CI, in the tier-1 test ``tests/test_docs.py`` and by hand:

1. **Markdown link check.**  Every relative link target in the given
   markdown files/directories must exist on disk (anchors are stripped;
   external ``http(s)``/``mailto`` links are skipped -- this is a
   repo-consistency check, not a crawler).
2. **Docstring coverage floor.**  Every module, public class and public
   function/method under the ``--coverage-path`` trees is counted
   (``interrogate``-style); the run fails when the covered fraction drops
   below ``--fail-under`` percent.

Usage::

    python tools/check_docs.py --fail-under 90 \
        --coverage-path src/repro/core README.md docs ROADMAP.md
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Inline markdown links ``[text](target)`` (images included via ``!``).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks -- links inside them are examples, not references.
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)

#: Link schemes that are out of scope for the on-disk check.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into the list of markdown files to check."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = REPO_ROOT / path
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix.lower() == ".md":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a markdown file or directory: {raw}")
    return files


def check_markdown_links(files: Iterable[Path]) -> List[str]:
    """Return one error string per broken relative link."""
    errors: List[str] = []
    for path in files:
        if not path.exists():
            errors.append(f"{path}: file does not exist")
            continue
        text = _FENCE_RE.sub("", path.read_text(encoding="utf-8"))
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            target = target.split("#", 1)[0]
            if not target:  # pure in-page anchor
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                rel = path.relative_to(REPO_ROOT)
                errors.append(f"{rel}: broken link -> {match.group(1)}")
    return errors


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def docstring_coverage(paths: Iterable[str]) -> Tuple[int, int, List[str]]:
    """Count docstrings on modules, public classes and public callables.

    Returns:
        ``(documented, total, missing)`` where *missing* lists the
        undocumented definitions as ``file:line name`` strings.
    """
    documented = 0
    total = 0
    missing: List[str] = []
    for raw in paths:
        root = Path(raw)
        if not root.is_absolute():
            root = REPO_ROOT / root
        for source in sorted(root.rglob("*.py")):
            rel = source.relative_to(REPO_ROOT)
            tree = ast.parse(source.read_text(encoding="utf-8"))
            nodes: List[Tuple[str, ast.AST]] = [(f"{rel}", tree)]
            for node in ast.walk(tree):
                if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _is_public(node.name):
                        nodes.append((f"{rel}:{node.lineno} {node.name}", node))
            for label, node in nodes:
                total += 1
                if ast.get_docstring(node) is not None:
                    documented += 1
                else:
                    missing.append(label)
    return documented, total, missing


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code (0 == all checks pass)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "markdown",
        nargs="*",
        default=["README.md", "ROADMAP.md", "docs"],
        help="markdown files or directories to link-check",
    )
    parser.add_argument(
        "--coverage-path",
        action="append",
        default=None,
        help="python tree(s) to measure docstring coverage on "
        "(default: src/repro/core)",
    )
    parser.add_argument(
        "--fail-under",
        type=float,
        default=90.0,
        help="minimum docstring coverage percentage (default 90)",
    )
    parser.add_argument(
        "--list-missing",
        action="store_true",
        help="print every undocumented definition",
    )
    args = parser.parse_args(argv)
    coverage_paths = args.coverage_path or ["src/repro/core"]

    failures = 0

    files = iter_markdown_files(args.markdown)
    link_errors = check_markdown_links(files)
    print(f"[docs] link check: {len(files)} markdown files")
    for error in link_errors:
        print(f"[docs]   BROKEN {error}")
        failures += 1
    if not link_errors:
        print("[docs]   all relative links resolve")

    documented, total, missing = docstring_coverage(coverage_paths)
    pct = 100.0 * documented / total if total else 100.0
    verdict = "OK" if pct >= args.fail_under else "FAIL"
    print(
        f"[docs] docstring coverage: {documented}/{total} = {pct:.1f}% "
        f"(floor {args.fail_under:.0f}%) -> {verdict}"
    )
    if args.list_missing or pct < args.fail_under:
        for label in missing:
            print(f"[docs]   missing docstring: {label}")
    if pct < args.fail_under:
        failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
